"""End-to-end integration: the headline Table-V shape at miniature scale.

One test trains both systems across three malicious fractions and checks
the paper's central qualitative claim in a single run — the kind of
smoke test a release pipeline would gate on.
"""

from dataclasses import replace

import pytest

from repro.core.schemes import scheme_config
from repro.experiments import (
    ExperimentConfig,
    build_abdhfl_trainer,
    build_vanilla_trainer,
    prepare_data,
)

MINI = ExperimentConfig(
    n_levels=3,
    cluster_size=3,
    n_top=3,       # 27 clients
    image_side=10,
    samples_per_client=120,
    n_test=400,
    n_rounds=15,
    hidden=(24,),
    batch_size=32,
    learning_rate=0.5,
)


@pytest.mark.slow
class TestHeadlineShape:
    def test_table5_shape_mini(self):
        results = {}
        for fraction in (0.0, 0.5):
            cfg = replace(MINI, malicious_fraction=fraction)
            data = prepare_data(cfg)
            abd = build_abdhfl_trainer(cfg, data)
            abd.run(cfg.n_rounds)
            van = build_vanilla_trainer(cfg, data)
            van.run(cfg.n_rounds)
            results[fraction] = (
                abd.history[-1].test_accuracy,
                van.history[-1].test_accuracy,
            )
        abd_clean, van_clean = results[0.0]
        abd_attacked, van_attacked = results[0.5]
        # clean parity
        assert abs(abd_clean - van_clean) < 0.15
        assert abd_clean > 0.55
        # under majority-cluster poisoning ABD-HFL wins decisively
        assert abd_attacked > van_attacked + 0.2
        # vanilla collapses toward the constant-label predictor
        assert van_attacked < 0.35

    def test_all_four_schemes_agree_on_clean_data(self):
        cfg = replace(MINI, malicious_fraction=0.0, n_rounds=10)
        accs = []
        for scheme in (1, 2, 3, 4):
            data = prepare_data(cfg)
            abd_config = scheme_config(
                scheme,
                bra_name=cfg.partial_aggregator,
                bra_options=cfg.partial_options,
                training=cfg.training_config(),
            )
            trainer = build_abdhfl_trainer(cfg, data, abdhfl_config=abd_config)
            trainer.run(cfg.n_rounds)
            accs.append(trainer.history[-1].test_accuracy)
        # with no adversary, scheme choice must not matter much
        assert max(accs) - min(accs) < 0.15
        assert min(accs) > 0.5
