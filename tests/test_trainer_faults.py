"""Fault injection in the round-synchronous trainer.

Plan times are round indices here: a ``CrashEvent(d, at=1.0,
recover_at=3.0)`` removes device ``d`` for rounds 1 and 2.
"""

import numpy as np

from repro.core.config import ABDHFLConfig, LevelAggregation, TrainingConfig
from repro.core.trainer import ABDHFLTrainer
from repro.data.partition import iid_partition
from repro.data.synthetic_mnist import SyntheticMNIST, make_synthetic_mnist
from repro.faults import CrashEvent, CrashSchedule, FaultPlan
from repro.nn.model import MLP
from repro.topology.tree import build_ecsm
from repro.utils.seeding import SeedSequenceFactory


def small_setup(seed=0, n_levels=3, cluster_size=2, n_top=2):
    seeds = SeedSequenceFactory(seed)
    hierarchy = build_ecsm(n_levels=n_levels, cluster_size=cluster_size, n_top=n_top)
    cfg = SyntheticMNIST(side=8, noise_sigma=0.15)
    n_clients = len(hierarchy.bottom_clients())
    train, test = make_synthetic_mnist(
        n_clients * 80, 300, seeds.generator("data"), cfg
    )
    partition = iid_partition(train, n_clients, seeds.generator("part"))
    datasets = dict(enumerate(partition.shards))
    model = MLP(64, (16,), 10, seeds.generator("init"))
    return hierarchy, datasets, model, test


def default_config():
    return ABDHFLConfig(
        training=TrainingConfig(local_iterations=8, batch_size=16, learning_rate=0.8),
        default_intermediate=LevelAggregation("bra", "multikrum"),
        default_top=LevelAggregation("cba", "voting"),
    )


def make_trainer(fault_plan=None, seed=0, **setup_kwargs):
    hierarchy, datasets, model, test = small_setup(seed=seed, **setup_kwargs)
    trainer = ABDHFLTrainer(
        hierarchy,
        datasets,
        model,
        default_config(),
        test,
        seed=seed,
        fault_plan=fault_plan,
    )
    return trainer, hierarchy


class TestBitIdentity:
    def test_zero_rate_plan_is_bit_identical(self):
        baseline, _ = make_trainer(fault_plan=None)
        faulted, _ = make_trainer(fault_plan=FaultPlan())
        rec_a = baseline.run(3)
        rec_b = faulted.run(3)
        for a, b in zip(rec_a, rec_b):
            assert a.test_accuracy == b.test_accuracy
            assert a.test_loss == b.test_loss
        np.testing.assert_array_equal(baseline.global_model, faulted.global_model)
        assert faulted.fault_stats.total_injected == 0


class TestDegradation:
    def test_training_survives_drops(self):
        plan = FaultPlan.uniform(drop_probability=0.15, seed=4, max_retries=1)
        trainer, hierarchy = make_trainer(fault_plan=plan)
        records = trainer.run(3)
        assert len(records) == 3
        assert all(np.isfinite(r.test_accuracy) for r in records)
        assert trainer.fault_stats.dropped > 0
        hierarchy.validate()

    def test_total_upload_loss_falls_back_to_global_model(self):
        """All members of a cluster severed -> cluster contributes the
        current global model instead of poisoning the upper levels."""
        plan = FaultPlan.uniform(drop_probability=1.0, seed=0, max_retries=0)
        trainer, hierarchy = make_trainer(fault_plan=plan)
        records = trainer.run(2)
        assert all(np.isfinite(r.test_accuracy) for r in records)
        assert trainer.fault_stats.quorums_degraded > 0
        hierarchy.validate()


class TestCrashAndRecovery:
    def test_leader_crash_reelects_and_completes(self):
        hierarchy_probe = build_ecsm(n_levels=3, cluster_size=2, n_top=2)
        leader = hierarchy_probe.clusters_at(hierarchy_probe.bottom_level)[0].leader
        plan = FaultPlan(crashes=CrashSchedule((CrashEvent(leader, at=1.0),)))
        trainer, hierarchy = make_trainer(fault_plan=plan)
        records = trainer.run(3)
        assert len(records) == 3
        assert trainer.fault_stats.crashes == 1
        assert trainer.fault_stats.reelections >= 1
        assert leader not in hierarchy.nodes
        hierarchy.validate()

    def test_crash_recovery_rejoins_cluster(self):
        hierarchy_probe = build_ecsm(n_levels=3, cluster_size=2, n_top=2)
        leader = hierarchy_probe.clusters_at(hierarchy_probe.bottom_level)[0].leader
        plan = FaultPlan(
            crashes=CrashSchedule(
                (CrashEvent(leader, at=1.0, recover_at=3.0),)
            )
        )
        trainer, hierarchy = make_trainer(fault_plan=plan)
        n_clients = len(hierarchy.bottom_clients())
        records = trainer.run(4)
        assert len(records) == 4
        assert trainer.fault_stats.crashes == 1
        assert trainer.fault_stats.recoveries == 1
        assert leader in hierarchy.nodes
        assert len(hierarchy.bottom_clients()) == n_clients
        hierarchy.validate()

    def test_member_crash_skips_local_training(self):
        """A crashed non-leader contributes nothing but the round finishes."""
        hierarchy_probe = build_ecsm(n_levels=3, cluster_size=2, n_top=2)
        bottom = hierarchy_probe.clusters_at(hierarchy_probe.bottom_level)[0]
        victim = [d for d in bottom.members if d != bottom.leader][0]
        plan = FaultPlan(crashes=CrashSchedule((CrashEvent(victim, at=0.0),)))
        trainer, hierarchy = make_trainer(fault_plan=plan)
        records = trainer.run(2)
        assert all(np.isfinite(r.test_accuracy) for r in records)
        assert trainer.fault_stats.crashes == 1
        assert trainer.fault_stats.reelections == 0


class TestDeterminism:
    def test_same_plan_same_history(self):
        def history(plan_seed):
            plan = FaultPlan.uniform(drop_probability=0.2, seed=plan_seed)
            trainer, _ = make_trainer(fault_plan=plan)
            records = trainer.run(3)
            return [(r.test_accuracy, r.test_loss) for r in records]

        assert history(9) == history(9)
