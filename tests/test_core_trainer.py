"""Integration tests for the ABD-HFL trainer (Algorithms 1-6)."""

import numpy as np
import pytest

from repro.attacks import SignFlip
from repro.core.config import ABDHFLConfig, LevelAggregation, TrainingConfig
from repro.core.trainer import ABDHFLTrainer, make_consensus
from repro.data.partition import iid_partition
from repro.data.poisoning import poison_type1
from repro.data.synthetic_mnist import SyntheticMNIST, make_synthetic_mnist
from repro.nn.model import MLP
from repro.topology.tree import assign_byzantine, build_ecsm
from repro.utils.seeding import SeedSequenceFactory


def small_setup(
    malicious_fraction=0.0,
    poison=False,
    seed=0,
    n_levels=3,
    cluster_size=2,
    n_top=2,
):
    """A small but full ABD-HFL instance: 2x2x2 tree, 8 clients."""
    seeds = SeedSequenceFactory(seed)
    hierarchy = build_ecsm(n_levels=n_levels, cluster_size=cluster_size, n_top=n_top)
    byz = assign_byzantine(
        hierarchy, malicious_fraction, seeds.generator("byz"), placement="prefix"
    )
    cfg = SyntheticMNIST(side=8, noise_sigma=0.15)
    n_clients = len(hierarchy.bottom_clients())
    train, test = make_synthetic_mnist(n_clients * 80, 300, seeds.generator("data"), cfg)
    partition = iid_partition(train, n_clients, seeds.generator("part"))
    datasets = {}
    for cid, shard in enumerate(partition.shards):
        if poison and cid in set(byz):
            datasets[cid] = poison_type1(shard)
        else:
            datasets[cid] = shard
    model = MLP(64, (16,), 10, seeds.generator("init"))
    return hierarchy, datasets, model, test


def default_config(**kwargs):
    defaults = dict(
        training=TrainingConfig(local_iterations=8, batch_size=16, learning_rate=0.8),
        default_intermediate=LevelAggregation("bra", "multikrum"),
        default_top=LevelAggregation("cba", "voting"),
    )
    defaults.update(kwargs)
    return ABDHFLConfig(**defaults)


class TestConstruction:
    def test_missing_dataset_rejected(self):
        hierarchy, datasets, model, test = small_setup()
        del datasets[0]
        with pytest.raises(ValueError):
            ABDHFLTrainer(hierarchy, datasets, model, default_config(), test)

    def test_flag_level_clamped(self):
        """A flag level at/below the bottom is clamped to L-1 (App. E)."""
        hierarchy, datasets, model, test = small_setup()
        trainer = ABDHFLTrainer(
            hierarchy, datasets, model, default_config(flag_level=5), test
        )
        assert trainer._flag_level == hierarchy.bottom_level - 1

    def test_validation_shards_default_split(self):
        hierarchy, datasets, model, test = small_setup()
        trainer = ABDHFLTrainer(hierarchy, datasets, model, default_config(), test)
        assert trainer.validator.n_members == hierarchy.top_cluster.size

    def test_initial_model_is_template(self):
        hierarchy, datasets, model, test = small_setup()
        trainer = ABDHFLTrainer(hierarchy, datasets, model, default_config(), test)
        np.testing.assert_array_equal(trainer.global_model, model.get_flat())


class TestTraining:
    def test_accuracy_improves(self):
        hierarchy, datasets, model, test = small_setup()
        trainer = ABDHFLTrainer(
            hierarchy, datasets, model, default_config(), test, seed=1
        )
        history = trainer.run(12)
        assert history[-1].test_accuracy > history[0].test_accuracy
        assert history[-1].test_accuracy > 0.5

    def test_history_bookkeeping(self):
        hierarchy, datasets, model, test = small_setup()
        trainer = ABDHFLTrainer(hierarchy, datasets, model, default_config(), test)
        trainer.run(3)
        assert [r.round_index for r in trainer.history] == [0, 1, 2]
        assert trainer.round_index == 3

    def test_eval_every_skips_evaluation(self):
        hierarchy, datasets, model, test = small_setup()
        trainer = ABDHFLTrainer(hierarchy, datasets, model, default_config(), test)
        trainer.run(4, eval_every=2)
        accs = [r.test_accuracy for r in trainer.history]
        assert np.isnan(accs[1]) and np.isnan(accs[3])
        assert np.isfinite(accs[0]) and np.isfinite(accs[2])

    def test_deterministic(self):
        results = []
        for _ in range(2):
            hierarchy, datasets, model, test = small_setup(seed=9)
            trainer = ABDHFLTrainer(
                hierarchy, datasets, model, default_config(), test, seed=9
            )
            trainer.run(3)
            results.append(trainer.global_model.copy())
        np.testing.assert_array_equal(results[0], results[1])

    def test_run_validation(self):
        hierarchy, datasets, model, test = small_setup()
        trainer = ABDHFLTrainer(hierarchy, datasets, model, default_config(), test)
        with pytest.raises(ValueError):
            trainer.run(0)


class TestRobustness:
    def test_poisoning_filtered(self):
        """One poisoned client per bottom cluster: Multi-Krum filters it."""
        hierarchy, datasets, model, test = small_setup(
            malicious_fraction=0.25, poison=True, cluster_size=4, n_top=2, n_levels=2
        )
        trainer = ABDHFLTrainer(
            hierarchy,
            datasets,
            model,
            default_config(),
            test,
            seed=2,
            top_byzantine_votes=0,
        )
        trainer.run(16)
        assert trainer.history[-1].test_accuracy > 0.5

    def test_model_attack_applied(self):
        """Sign-flip uploads from Byzantine members must hurt FedAvg-at-
        every-level but not the robust stack."""
        hierarchy, datasets, model, test = small_setup(
            malicious_fraction=0.25, cluster_size=4, n_top=2, n_levels=2
        )
        robust = ABDHFLTrainer(
            hierarchy,
            datasets,
            model,
            default_config(),
            test,
            seed=3,
            model_attack=SignFlip(scale=5.0),
        )
        robust.run(10)
        hierarchy2, datasets2, model2, test2 = small_setup(
            malicious_fraction=0.25, cluster_size=4, n_top=2, n_levels=2
        )
        fragile = ABDHFLTrainer(
            hierarchy2,
            datasets2,
            model2,
            ABDHFLConfig(
                training=TrainingConfig(local_iterations=3, batch_size=16, learning_rate=0.5),
                default_intermediate=LevelAggregation("bra", "fedavg"),
                default_top=LevelAggregation("bra", "fedavg"),
            ),
            test2,
            seed=3,
            model_attack=SignFlip(scale=5.0),
        )
        fragile.run(10)
        assert robust.history[-1].test_accuracy > fragile.history[-1].test_accuracy

    def test_quorum_below_one_still_trains(self):
        hierarchy, datasets, model, test = small_setup(cluster_size=4, n_top=2, n_levels=2)
        trainer = ABDHFLTrainer(
            hierarchy, datasets, model, default_config(phi=0.75), test, seed=4
        )
        trainer.run(8)
        assert trainer.history[-1].test_accuracy > 0.4

    def test_top_excluded_recorded(self):
        hierarchy, datasets, model, test = small_setup(
            malicious_fraction=0.5, poison=True, cluster_size=4, n_top=4, n_levels=2
        )
        trainer = ABDHFLTrainer(
            hierarchy, datasets, model, default_config(), test, seed=5
        )
        trainer.run(6)
        assert any(r.top_excluded > 0 for r in trainer.history[2:])


class TestBRAAtTop:
    def test_scheme3_runs(self):
        hierarchy, datasets, model, test = small_setup()
        cfg = default_config(default_top=LevelAggregation("bra", "median"))
        trainer = ABDHFLTrainer(hierarchy, datasets, model, cfg, test, seed=6)
        trainer.run(8)
        assert trainer.history[-1].test_accuracy > 0.4
        # BRA at top records no consensus cost
        assert trainer.history[-1].consensus_cost.total_messages() == 0


class TestCBAAtIntermediate:
    def test_scheme2_runs(self):
        hierarchy, datasets, model, test = small_setup(cluster_size=4, n_top=2, n_levels=2)
        cfg = default_config(
            default_intermediate=LevelAggregation("cba", "approx_agreement", {"epsilon": 1e-3, "f": 0}),
            default_top=LevelAggregation("bra", "median"),
        )
        trainer = ABDHFLTrainer(hierarchy, datasets, model, cfg, test, seed=7)
        trainer.run(6)
        assert trainer.history[-1].test_accuracy > 0.4


class TestPipelineMode:
    def test_pipeline_mode_trains(self):
        hierarchy, datasets, model, test = small_setup()
        cfg = default_config(pipeline_mode=True, flag_level=1, global_arrival_iteration=1)
        trainer = ABDHFLTrainer(hierarchy, datasets, model, cfg, test, seed=8)
        history = trainer.run(12)
        assert history[-1].test_accuracy > 0.5

    def test_flag_level_zero_uses_global(self):
        hierarchy, datasets, model, test = small_setup()
        cfg = default_config(pipeline_mode=True, flag_level=0)
        trainer = ABDHFLTrainer(hierarchy, datasets, model, cfg, test, seed=8)
        trainer.run(4)
        # flag models staged for every bottom cluster, equal to the global
        for cluster in hierarchy.clusters_at(hierarchy.bottom_level):
            np.testing.assert_array_equal(
                trainer._flag_models[cluster.index], trainer.global_model
            )


class TestMakeConsensus:
    def test_all_protocols_instantiable(self):
        for name in ("voting", "committee", "pbft", "pos", "approx_agreement"):
            protocol = make_consensus(name)
            assert protocol is not None

    def test_unknown_protocol(self):
        with pytest.raises(KeyError):
            make_consensus("raft")

    def test_validator_injected(self, tiny_model, tiny_test_set):
        from repro.consensus.validation import ModelValidator

        validator = ModelValidator(tiny_model, [tiny_test_set])
        protocol = make_consensus("voting", validator=None)
        assert protocol.validator is None
        protocol = make_consensus("voting", {}, validator=validator)
        assert protocol.validator is validator
