"""Tests for hierarchy serialization."""

import json

import pytest

from repro.topology.dynamics import ChurnProcess
from repro.topology.serialize import (
    hierarchy_from_dict,
    hierarchy_to_dict,
    load_hierarchy,
    save_hierarchy,
)
from repro.topology.tree import assign_byzantine


class TestDictRoundTrip:
    def test_structure_preserved(self, paper_hierarchy):
        snapshot = hierarchy_to_dict(paper_hierarchy)
        rebuilt = hierarchy_from_dict(snapshot)
        assert rebuilt.n_levels == paper_hierarchy.n_levels
        assert rebuilt.bottom_clients() == paper_hierarchy.bottom_clients()
        for level in range(paper_hierarchy.n_levels):
            for a, b in zip(
                paper_hierarchy.clusters_at(level), rebuilt.clusters_at(level)
            ):
                assert a.members == b.members
                assert a.leader == b.leader

    def test_byzantine_flags_preserved(self, paper_hierarchy, rng):
        assign_byzantine(paper_hierarchy, 0.3, rng)
        rebuilt = hierarchy_from_dict(hierarchy_to_dict(paper_hierarchy))
        assert rebuilt.byzantine_devices() == paper_hierarchy.byzantine_devices()

    def test_churned_hierarchy_round_trips(self, paper_hierarchy, rng):
        ChurnProcess(paper_hierarchy, rng, byzantine_join_fraction=0.3).run(20)
        rebuilt = hierarchy_from_dict(hierarchy_to_dict(paper_hierarchy))
        assert rebuilt.bottom_clients() == paper_hierarchy.bottom_clients()
        rebuilt.validate()

    def test_json_safe(self, paper_hierarchy):
        # must serialise without custom encoders
        json.dumps(hierarchy_to_dict(paper_hierarchy))

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            hierarchy_from_dict({"not": "a snapshot"})

    def test_rejects_wrong_version(self, paper_hierarchy):
        snapshot = hierarchy_to_dict(paper_hierarchy)
        snapshot["version"] = 99
        with pytest.raises(ValueError):
            hierarchy_from_dict(snapshot)

    def test_rejects_unknown_byzantine_id(self, paper_hierarchy):
        snapshot = hierarchy_to_dict(paper_hierarchy)
        snapshot["byzantine"] = [9999]
        with pytest.raises(ValueError):
            hierarchy_from_dict(snapshot)


class TestFileRoundTrip:
    def test_save_load(self, paper_hierarchy, rng, tmp_path):
        assign_byzantine(paper_hierarchy, 0.25, rng)
        path = save_hierarchy(tmp_path / "h.json", paper_hierarchy)
        loaded = load_hierarchy(path)
        assert loaded.byzantine_devices() == paper_hierarchy.byzantine_devices()
        assert loaded.top_cluster.members == paper_hierarchy.top_cluster.members

    def test_creates_parent_dirs(self, paper_hierarchy, tmp_path):
        path = save_hierarchy(tmp_path / "a" / "b" / "h.json", paper_hierarchy)
        assert path.exists()
