"""Fault injection in the event-driven pipeline run.

The acceptance criteria for the fault layer live here: bit-identity of a
zero-rate plan, graceful degradation via timeouts under loss, and leader
crash -> re-election -> recovery keeping the run alive and the hierarchy
valid.
"""

import math

from repro.faults import CrashEvent, CrashSchedule, FaultPlan, Partition
from repro.pipeline.event_run import EventDrivenRun, TimingConfig
from repro.sim.latency import FixedLatency, UniformLatency


def quick_config(**overrides):
    defaults = dict(
        local_compute=FixedLatency(10.0),
        partial_aggregate=FixedLatency(1.0),
        global_aggregate=FixedLatency(5.0),
        link=FixedLatency(0.1),
    )
    defaults.update(overrides)
    return TimingConfig(**defaults)


def timing_tuples(timings):
    return [
        (t.round_index, t.cluster_index, t.first_upload, t.flag_arrival,
         t.global_arrival)
        for t in timings
    ]


class TestBitIdentity:
    def test_zero_rate_plan_is_bit_identical(self, paper_hierarchy):
        """FaultPlan with all rates zero must not perturb a single event."""
        cfg = quick_config(
            local_compute=UniformLatency(8.0, 12.0),
            link=UniformLatency(0.05, 0.2),
        )
        baseline = EventDrivenRun(paper_hierarchy, cfg, flag_level=1, seed=3)
        plan_run = EventDrivenRun(
            paper_hierarchy, cfg, flag_level=1, seed=3, fault_plan=FaultPlan()
        )
        assert timing_tuples(baseline.run(4)) == timing_tuples(plan_run.run(4))
        assert plan_run.fault_stats.total_injected == 0
        assert plan_run.fault_stats.timeouts_fired == 0


class TestGracefulDegradation:
    def test_drops_complete_via_timeouts(self, paper_hierarchy):
        """10% loss (bounded retries) must not deadlock any round."""
        plan = FaultPlan.uniform(
            drop_probability=0.10, seed=5, max_retries=1, leader_timeout=20.0
        )
        run = EventDrivenRun(
            paper_hierarchy, quick_config(), flag_level=1, seed=3, fault_plan=plan
        )
        run.run(6)
        assert run.completed_rounds() == 6
        assert run.fault_stats.dropped > 0
        assert run.fault_stats.retries > 0

    def test_degraded_quorum_counted(self, small_hierarchy):
        """Permanently severing one member forces a timeout every round."""
        # device ids: bottom clusters of 3; sever one non-leader member
        bottom = small_hierarchy.clusters_at(small_hierarchy.bottom_level)[0]
        victim = [d for d in bottom.members if d != bottom.leader][0]
        plan = FaultPlan(
            partitions=(
                Partition(0.0, 1e9, (frozenset({victim}),)),
            ),
            max_retries=0,
            leader_timeout=5.0,
        )
        run = EventDrivenRun(
            small_hierarchy, quick_config(), flag_level=0, seed=0, fault_plan=plan
        )
        run.run(3)
        assert run.completed_rounds() == 3
        assert run.fault_stats.timeouts_fired >= 3
        assert run.fault_stats.quorums_degraded >= 3
        assert run.fault_stats.partition_drops > 0

    def test_duplicates_do_not_inflate_quorum(self, small_hierarchy):
        """Dedup by sender: duplicated uploads must not fake a quorum."""
        plan = FaultPlan.uniform(duplicate_probability=1.0, seed=1)
        run = EventDrivenRun(
            small_hierarchy, quick_config(), flag_level=0, seed=0, fault_plan=plan
        )
        timings = run.run(2)
        assert run.fault_stats.duplicated > 0
        assert run.fault_stats.timeouts_fired == 0
        assert all(math.isfinite(t.global_arrival) for t in timings)


class TestCrashAndRecovery:
    def test_leader_crash_triggers_reelection(self, paper_hierarchy):
        bottom = paper_hierarchy.clusters_at(paper_hierarchy.bottom_level)[0]
        leader = bottom.leader
        plan = FaultPlan(
            crashes=CrashSchedule((CrashEvent(leader, at=40.0),)),
            leader_timeout=15.0,
        )
        run = EventDrivenRun(
            paper_hierarchy, quick_config(), flag_level=1, seed=3, fault_plan=plan
        )
        run.run(6)
        assert run.fault_stats.crashes == 1
        assert run.fault_stats.reelections >= 1
        assert run.completed_rounds() == 6
        paper_hierarchy.validate()
        assert leader not in paper_hierarchy.nodes

    def test_crashed_leader_recovers_and_rejoins(self, paper_hierarchy):
        bottom = paper_hierarchy.clusters_at(paper_hierarchy.bottom_level)[0]
        leader = bottom.leader
        n_before = len(paper_hierarchy.nodes)
        plan = FaultPlan(
            crashes=CrashSchedule(
                (CrashEvent(leader, at=40.0, recover_at=120.0),)
            ),
            leader_timeout=15.0,
        )
        run = EventDrivenRun(
            paper_hierarchy, quick_config(), flag_level=1, seed=3, fault_plan=plan
        )
        run.run(8)
        assert run.fault_stats.crashes == 1
        assert run.fault_stats.recoveries == 1
        paper_hierarchy.validate()
        assert len(paper_hierarchy.nodes) == n_before
        assert leader in paper_hierarchy.nodes
        # rejoined as a plain member of its old cluster, not as leader
        cluster = paper_hierarchy.cluster_of(leader, paper_hierarchy.bottom_level)
        assert cluster.index == bottom.index

    def test_member_crash_degrades_not_deadlocks(self, small_hierarchy):
        bottom = small_hierarchy.clusters_at(small_hierarchy.bottom_level)[0]
        victim = [d for d in bottom.members if d != bottom.leader][0]
        plan = FaultPlan(
            crashes=CrashSchedule((CrashEvent(victim, at=0.0),)),
            leader_timeout=5.0,
        )
        run = EventDrivenRun(
            small_hierarchy, quick_config(), flag_level=0, seed=0, fault_plan=plan
        )
        run.run(3)
        assert run.completed_rounds() == 3
        assert run.fault_stats.timeouts_fired >= 1


class TestDeterminism:
    def test_same_plan_same_trace(self):
        from repro.topology.tree import build_ecsm

        def trace(plan_seed):
            h = build_ecsm(n_levels=3, cluster_size=4, n_top=4)
            plan = FaultPlan.uniform(
                drop_probability=0.15, duplicate_probability=0.05,
                seed=plan_seed, leader_timeout=20.0,
            )
            run = EventDrivenRun(
                h, quick_config(), flag_level=1, seed=3, fault_plan=plan
            )
            return timing_tuples(run.run(4)), run.fault_stats.as_dict()

        assert trace(21) == trace(21)
        assert trace(21) != trace(22)
