"""Per-rule tests for the Byzantine-robust aggregation stack."""

import numpy as np
import pytest

from repro.aggregation import (
    AutoGM,
    CenteredClipping,
    ClusteringAggregator,
    FedAvg,
    GeoMed,
    Krum,
    Median,
    MultiKrum,
    TrimmedMean,
    available_aggregators,
    cosine_similarity_matrix,
    geometric_median,
    get_aggregator,
    krum_scores,
    pairwise_sq_distances,
)
from repro.aggregation.base import validate_updates


def honest_cluster(rng, k=10, d=20, center=None, noise=0.1):
    center = center if center is not None else rng.standard_normal(d)
    return center + noise * rng.standard_normal((k, d)), center


class TestValidation:
    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            validate_updates(np.zeros(5), None)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            validate_updates(np.zeros((0, 3)), None)

    def test_rejects_nan(self):
        updates = np.zeros((2, 2))
        updates[0, 0] = np.nan
        with pytest.raises(ValueError):
            validate_updates(updates, None)

    def test_weights_normalised(self):
        _, w = validate_updates(np.zeros((4, 2)), np.array([1.0, 1.0, 1.0, 1.0]))
        np.testing.assert_allclose(w, 0.25)

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            validate_updates(np.zeros((2, 2)), np.array([1.0, -1.0]))

    def test_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            validate_updates(np.zeros((2, 2)), np.zeros(2))


class TestRegistry:
    def test_all_rules_registered(self):
        names = available_aggregators()
        for expected in (
            "fedavg",
            "median",
            "trimmed_mean",
            "krum",
            "multikrum",
            "geomed",
            "autogm",
            "centered_clipping",
            "clustering",
        ):
            assert expected in names

    def test_get_with_options(self):
        rule = get_aggregator("trimmed_mean", beta=0.2)
        assert rule.beta == 0.2

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_aggregator("nope")


class TestNorms:
    def test_pairwise_matches_naive(self, rng):
        x = rng.standard_normal((6, 8))
        d2 = pairwise_sq_distances(x)
        for i in range(6):
            for j in range(6):
                expected = float(np.sum((x[i] - x[j]) ** 2))
                np.testing.assert_allclose(d2[i, j], expected, atol=1e-9)

    def test_diagonal_zero(self, rng):
        d2 = pairwise_sq_distances(rng.standard_normal((4, 3)))
        np.testing.assert_array_equal(np.diag(d2), 0.0)

    def test_non_negative(self, rng):
        x = rng.standard_normal((5, 3)) * 1e-8  # stress round-off
        assert (pairwise_sq_distances(x) >= 0).all()


class TestFedAvg:
    def test_uniform_mean(self, rng):
        x = rng.standard_normal((5, 4))
        np.testing.assert_allclose(FedAvg()(x), x.mean(axis=0))

    def test_weighted(self):
        x = np.array([[0.0], [10.0]])
        out = FedAvg()(x, weights=np.array([3.0, 1.0]))
        np.testing.assert_allclose(out, [2.5])

    def test_not_robust_to_one_outlier(self, rng):
        """Blanchard et al.: a single adversary steers the linear rule."""
        honest, center = honest_cluster(rng)
        attacker = center + 1e6
        updates = np.vstack([honest, attacker[None, :]])
        out = FedAvg()(updates)
        assert np.linalg.norm(out - center) > 100


class TestMedian:
    def test_robust_to_minority_outliers(self, rng):
        honest, center = honest_cluster(rng, k=9)
        outliers = np.full((4, 20), 1e6)
        updates = np.vstack([honest, outliers])
        out = Median()(updates)
        assert np.linalg.norm(out - center) < 1.0

    def test_odd_count_exact(self):
        x = np.array([[1.0], [5.0], [3.0]])
        np.testing.assert_allclose(Median()(x), [3.0])


class TestTrimmedMean:
    def test_trims_outliers(self, rng):
        honest, center = honest_cluster(rng, k=8)
        updates = np.vstack([honest, np.full((2, 20), 1e6)])
        out = TrimmedMean(beta=0.2)(updates)
        assert np.linalg.norm(out - center) < 1.0

    def test_beta_zero_is_mean(self, rng):
        x = rng.standard_normal((5, 3))
        np.testing.assert_allclose(TrimmedMean(beta=0.0)(x), x.mean(axis=0))

    def test_beta_validation(self):
        with pytest.raises(ValueError):
            TrimmedMean(beta=0.5)
        with pytest.raises(ValueError):
            TrimmedMean(beta=-0.1)


class TestKrum:
    def test_scores_prefer_central(self, rng):
        honest, _ = honest_cluster(rng, k=8)
        outlier = honest.mean(axis=0) + 100.0
        updates = np.vstack([honest, outlier[None, :]])
        scores = krum_scores(updates, f=1)
        assert np.argmax(scores) == 8  # outlier has the worst score

    def test_selects_an_input(self, rng):
        honest, _ = honest_cluster(rng, k=8)
        out = Krum(f=1)(honest)
        assert any(np.array_equal(out, row) for row in honest)

    def test_excludes_far_attacker(self, rng):
        honest, center = honest_cluster(rng, k=10)
        attacker = np.full((2, 20), 500.0)
        updates = np.vstack([honest, attacker])
        out = Krum(f=2)(updates)
        assert np.linalg.norm(out - center) < 1.0

    def test_single_update_passthrough(self, rng):
        x = rng.standard_normal((1, 5))
        np.testing.assert_array_equal(Krum()(x), x[0])

    def test_small_k_falls_back_to_median(self, rng):
        x = rng.standard_normal((3, 5))
        np.testing.assert_allclose(Krum()(x), np.median(x, axis=0))

    def test_f_too_large_raises_in_scores(self, rng):
        with pytest.raises(ValueError):
            krum_scores(rng.standard_normal((5, 3)), f=3)

    def test_validation(self):
        with pytest.raises(ValueError):
            Krum(f=-1)
        with pytest.raises(ValueError):
            Krum(byzantine_fraction=1.0)


class TestMultiKrum:
    def test_averages_selected(self, rng):
        honest, center = honest_cluster(rng, k=12)
        attacker = np.full((3, 20), 100.0)
        updates = np.vstack([honest, attacker])
        out = MultiKrum(f=3)(updates)
        assert np.linalg.norm(out - center) < 1.0

    def test_m_one_equals_krum(self, rng):
        x, _ = honest_cluster(rng, k=8)
        np.testing.assert_array_equal(MultiKrum(f=1, m=1)(x), Krum(f=1)(x))

    def test_paper_setting_on_cluster_of_4(self, rng):
        """The evaluation uses Multi-Krum with assumed 25% Byzantine on
        clusters of 4: one poisoned member must be excluded."""
        honest, center = honest_cluster(rng, k=3, noise=0.05)
        poisoned = center + 50.0
        updates = np.vstack([honest, poisoned[None, :]])
        out = MultiKrum(byzantine_fraction=0.25)(updates)
        assert np.linalg.norm(out - center) < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiKrum(m=0)


class TestGeoMed:
    def test_matches_median_in_1d(self, rng):
        x = rng.standard_normal((9, 1))
        gm = geometric_median(x)
        np.testing.assert_allclose(gm, np.median(x, axis=0), atol=1e-4)

    def test_robust(self, rng):
        honest, center = honest_cluster(rng, k=9)
        updates = np.vstack([honest, np.full((4, 20), 1e5)])
        out = GeoMed()(updates)
        assert np.linalg.norm(out - center) < 1.0

    def test_coincident_point(self):
        x = np.array([[1.0, 1.0], [1.0, 1.0], [5.0, 5.0]])
        out = geometric_median(x)
        np.testing.assert_allclose(out, [1.0, 1.0], atol=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            GeoMed(max_iter=0)
        with pytest.raises(ValueError):
            GeoMed(tol=0)


class TestAutoGM:
    def test_identical_updates(self, rng):
        x = np.tile(rng.standard_normal(6), (5, 1))
        np.testing.assert_allclose(AutoGM()(x), x[0], atol=1e-9)

    def test_excludes_gross_outliers(self, rng):
        honest, center = honest_cluster(rng, k=10)
        updates = np.vstack([honest, np.full((2, 20), 1e4)])
        out = AutoGM(z=3.0)(updates)
        assert np.linalg.norm(out - center) < 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            AutoGM(z=0)


class TestCenteredClipping:
    def test_robust_to_large_outlier(self, rng):
        honest, center = honest_cluster(rng, k=9)
        updates = np.vstack([honest, np.full((2, 20), 1e6)])
        out = CenteredClipping()(updates)
        assert np.linalg.norm(out - center) < 2.0

    def test_clean_inputs_near_mean(self, rng):
        honest, _ = honest_cluster(rng, k=10, noise=0.01)
        out = CenteredClipping(tau=10.0)(honest)
        assert np.linalg.norm(out - honest.mean(axis=0)) < 0.1

    def test_validation(self):
        with pytest.raises(ValueError):
            CenteredClipping(tau=0.0)
        with pytest.raises(ValueError):
            CenteredClipping(n_iter=0)


class TestClustering:
    def test_similarity_matrix(self, rng):
        x = rng.standard_normal((4, 6))
        sim = cosine_similarity_matrix(x)
        np.testing.assert_allclose(np.diag(sim), 1.0)
        assert (sim <= 1.0 + 1e-12).all() and (sim >= -1.0 - 1e-12).all()

    def test_keeps_majority_cluster(self, rng):
        center = np.ones(10)
        honest = center + 0.05 * rng.standard_normal((7, 10))
        flipped = -center + 0.05 * rng.standard_normal((3, 10))
        updates = np.vstack([honest, flipped])
        out = ClusteringAggregator(threshold=0.5)(updates)
        assert np.linalg.norm(out - center) < 0.5

    def test_single_update(self, rng):
        x = rng.standard_normal((1, 4))
        np.testing.assert_array_equal(ClusteringAggregator()(x), x[0])

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusteringAggregator(threshold=1.0)
