"""Tests for the Dropout layer."""

import numpy as np
import pytest

from repro.nn.layers import Linear, ReLU
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.model import Sequential
from repro.nn.optim import SGD
from repro.nn.regularization import Dropout


class TestDropout:
    def test_eval_mode_identity(self, rng):
        layer = Dropout(0.5, rng)
        x = rng.standard_normal((4, 6))
        np.testing.assert_array_equal(layer.forward(x, train=False), x)

    def test_p_zero_identity(self, rng):
        layer = Dropout(0.0, rng)
        x = rng.standard_normal((4, 6))
        np.testing.assert_array_equal(layer.forward(x, train=True), x)

    def test_expected_value_preserved(self, rng):
        layer = Dropout(0.3, rng)
        x = np.ones((2000, 50))
        out = layer.forward(x, train=True)
        np.testing.assert_allclose(out.mean(), 1.0, atol=0.02)

    def test_drops_expected_fraction(self, rng):
        layer = Dropout(0.4, rng)
        out = layer.forward(np.ones((1000, 100)), train=True)
        dropped = float(np.mean(out == 0.0))
        assert abs(dropped - 0.4) < 0.02

    def test_backward_uses_same_mask(self, rng):
        layer = Dropout(0.5, rng)
        x = np.ones((10, 10))
        out = layer.forward(x, train=True)
        grad = layer.backward(np.ones_like(x))
        np.testing.assert_array_equal(grad == 0.0, out == 0.0)

    def test_backward_eval_identity(self, rng):
        layer = Dropout(0.5, rng)
        layer.forward(np.ones((2, 2)), train=False)
        grad = layer.backward(np.full((2, 2), 3.0))
        np.testing.assert_array_equal(grad, 3.0)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            Dropout(1.0, rng)
        with pytest.raises(ValueError):
            Dropout(-0.1, rng)

    def test_trains_inside_model(self, rng):
        model = Sequential(
            [Linear(6, 16, rng), ReLU(), Dropout(0.2, rng), Linear(16, 3, rng)]
        )
        X = rng.standard_normal((96, 6))
        y = rng.integers(0, 3, 96)
        loss_fn = SoftmaxCrossEntropy()
        opt = SGD(model, 0.3)
        first = last = None
        for step in range(80):
            logits = model.forward(X, train=True)
            value = loss_fn.forward(logits, y)
            first = value if step == 0 else first
            last = value
            model.backward(loss_fn.backward())
            opt.step()
        assert last < first
