"""Tests for classification metrics."""

import numpy as np
import pytest

from repro.nn.metrics import accuracy, confusion_matrix, per_class_accuracy


class TestAccuracy:
    def test_perfect(self):
        assert accuracy(np.array([1, 2, 3]), np.array([1, 2, 3])) == 1.0

    def test_half(self):
        assert accuracy(np.array([1, 0]), np.array([1, 1])) == 0.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.array([1, 2]), np.array([1]))


class TestConfusionMatrix:
    def test_diagonal_for_perfect(self):
        y = np.array([0, 1, 2, 2])
        cm = confusion_matrix(y, y, 3)
        np.testing.assert_array_equal(cm, np.diag([1, 1, 2]))

    def test_off_diagonal(self):
        cm = confusion_matrix(np.array([1]), np.array([0]), 2)
        assert cm[0, 1] == 1
        assert cm.sum() == 1

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([5]), np.array([0]), 3)
        with pytest.raises(ValueError):
            confusion_matrix(np.array([0]), np.array([-1]), 3)

    def test_total_count(self, rng):
        preds = rng.integers(0, 4, 100)
        targets = rng.integers(0, 4, 100)
        assert confusion_matrix(preds, targets, 4).sum() == 100


class TestPerClassAccuracy:
    def test_values(self):
        targets = np.array([0, 0, 1, 1])
        preds = np.array([0, 1, 1, 1])
        pca = per_class_accuracy(preds, targets, 3)
        assert pca[0] == 0.5
        assert pca[1] == 1.0
        assert np.isnan(pca[2])  # class 2 absent
