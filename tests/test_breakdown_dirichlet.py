"""Tests for breakdown curves and the Dirichlet experiment option."""

from dataclasses import replace

import numpy as np
import pytest

from repro.experiments.matrix import breakdown_curve
from repro.experiments.setup import ExperimentConfig, prepare_data
from repro.experiments import build_abdhfl_trainer


class TestBreakdownCurve:
    def test_monotone_degradation_for_fedavg_scaling(self):
        cells = breakdown_curve(
            "fedavg", "scaling", fractions=(0.0, 0.2, 0.4), n_trials=4
        )
        gaps = [c.gap for c in cells]
        # the linear rule degrades as the adversary share grows
        assert gaps[0] < gaps[1] < gaps[2]
        assert gaps[2] > 50

    def test_median_stays_bounded_below_half(self):
        fractions = (0.0, 0.2, 0.4, 0.45)
        median = breakdown_curve("median", "scaling", fractions=fractions, n_trials=4)
        fedavg = breakdown_curve("fedavg", "scaling", fractions=fractions, n_trials=4)
        # the median degrades gracefully (its 1/2 breakdown point is never
        # crossed) while the linear rule explodes: order-of-magnitude gap
        assert median[-1].gap < 20
        assert fedavg[-1].gap > 10 * median[-1].gap

    def test_fraction_zero_uses_clean_gap(self):
        cells = breakdown_curve("fedavg", "scaling", fractions=(0.0,), n_trials=4)
        assert cells[0].gap < 3.0  # no attack applied at fraction 0

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            breakdown_curve("median", "ipm", fractions=(0.6,))


TINY = ExperimentConfig(
    n_levels=2,
    cluster_size=4,
    n_top=2,
    image_side=8,
    samples_per_client=100,
    n_test=200,
    n_rounds=3,
    hidden=(16,),
)


class TestDirichletExperiments:
    def test_partition_kind_dirichlet(self):
        cfg = replace(TINY, iid=False, noniid_kind="dirichlet", dirichlet_alpha=2.0)
        data = prepare_data(cfg)
        # clients hold different label mixes (skew exists)
        label_sets = [
            tuple(np.unique(ds.y)) for ds in data.client_datasets.values()
        ]
        assert len(set(label_sets)) > 1

    def test_dirichlet_trains(self):
        cfg = replace(
            TINY, iid=False, noniid_kind="dirichlet", dirichlet_alpha=2.0,
            n_rounds=4,
        )
        data = prepare_data(cfg)
        trainer = build_abdhfl_trainer(cfg, data)
        trainer.run(cfg.n_rounds)
        assert np.isfinite(trainer.history[-1].test_accuracy)

    def test_unknown_kind_rejected(self):
        cfg = replace(TINY, iid=False, noniid_kind="zipf")
        with pytest.raises(ValueError):
            prepare_data(cfg)

    def test_too_skewed_alpha_rejected_when_empty(self):
        cfg = replace(
            TINY,
            iid=False,
            noniid_kind="dirichlet",
            dirichlet_alpha=0.005,
            samples_per_client=10,
        )
        # extremely small alpha + tiny shards: either it happens to fill
        # every client or it raises the documented error — both acceptable,
        # but an empty shard must never silently pass through.
        try:
            data = prepare_data(cfg)
        except ValueError as err:
            assert "empty client shard" in str(err)
        else:
            assert all(len(ds) > 0 for ds in data.client_datasets.values())
