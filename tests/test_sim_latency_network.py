"""Tests for latency models and message channels."""

import numpy as np
import pytest

from repro.sim.engine import Simulator
from repro.sim.latency import (
    ExponentialLatency,
    FixedLatency,
    LogNormalLatency,
    StragglerLatency,
    UniformLatency,
)
from repro.sim.network import Channel


class TestLatencyModels:
    def test_fixed(self, rng):
        assert FixedLatency(2.5).sample(rng) == 2.5

    def test_fixed_validation(self):
        with pytest.raises(ValueError):
            FixedLatency(-1.0)

    def test_uniform_range(self, rng):
        model = UniformLatency(1.0, 3.0)
        samples = model.sample_many(rng, 200)
        assert samples.min() >= 1.0 and samples.max() <= 3.0

    def test_uniform_validation(self):
        with pytest.raises(ValueError):
            UniformLatency(3.0, 1.0)

    def test_exponential_mean(self, rng):
        model = ExponentialLatency(mean=2.0, minimum=1.0)
        samples = model.sample_many(rng, 3000)
        assert samples.min() >= 1.0
        np.testing.assert_allclose(samples.mean(), 3.0, rtol=0.15)

    def test_lognormal_median(self, rng):
        model = LogNormalLatency(median=5.0, sigma=0.3)
        samples = model.sample_many(rng, 3000)
        np.testing.assert_allclose(np.median(samples), 5.0, rtol=0.1)

    def test_straggler_tail(self):
        rng = np.random.default_rng(0)
        model = StragglerLatency(FixedLatency(1.0), p=0.2, factor=10.0)
        samples = model.sample_many(rng, 1000)
        frac_slow = float(np.mean(samples > 5.0))
        assert 0.1 < frac_slow < 0.3
        assert set(np.round(np.unique(samples), 6)) == {1.0, 10.0}

    def test_straggler_validation(self):
        with pytest.raises(ValueError):
            StragglerLatency(FixedLatency(1.0), p=1.5)
        with pytest.raises(ValueError):
            StragglerLatency(FixedLatency(1.0), factor=0.5)


class TestChannel:
    def _channel(self, latency=None):
        sim = Simulator()
        chan = Channel(sim, latency or FixedLatency(1.0), np.random.default_rng(0))
        return sim, chan

    def test_delivery_after_latency(self):
        sim, chan = self._channel(FixedLatency(2.0))
        delivered = []
        chan.send(0, 1, "m", "payload", 100, lambda m: delivered.append(m))
        sim.run()
        assert len(delivered) == 1
        assert delivered[0].delivered_at == 2.0
        assert delivered[0].payload == "payload"

    def test_stats_accounting(self):
        sim, chan = self._channel()
        chan.send(0, 1, "model", None, 800, lambda m: None)
        chan.send(0, 2, "vote", None, 64, lambda m: None)
        sim.run()
        assert chan.stats.messages == 2
        assert chan.stats.bytes == 864
        assert chan.stats.by_kind == {"model": 1, "vote": 1}

    def test_broadcast_is_unicasts(self):
        sim, chan = self._channel()
        received = []
        chan.broadcast(9, [1, 2, 3], "flag", 7, 10, lambda m: received.append(m.dst))
        sim.run()
        assert sorted(received) == [1, 2, 3]
        assert chan.stats.messages == 3

    def test_negative_size_rejected(self):
        _, chan = self._channel()
        with pytest.raises(ValueError):
            chan.send(0, 1, "m", None, -1, lambda m: None)

    def test_partial_synchrony_finite_delivery(self):
        """Every message is delivered at a finite time (Assumption 1)."""
        sim, chan = self._channel(ExponentialLatency(mean=5.0))
        count = []
        for i in range(50):
            chan.send(0, i, "m", None, 1, lambda m: count.append(1))
        sim.run()
        assert len(count) == 50
        assert np.isfinite(sim.now)


class TestDeliveryRetention:
    """`delivered` retention is opt-in: long runs must not accumulate
    every payload while the aggregate NetworkStats stay always-on."""

    def test_off_by_default(self):
        sim = Simulator()
        chan = Channel(sim, FixedLatency(1.0), np.random.default_rng(0))
        for i in range(20):
            chan.send(0, 1, "m", i, 8, lambda m: None)
        sim.run()
        assert len(chan.delivered) == 0
        assert chan.stats.messages == 20  # accounting unaffected

    def test_opt_in_retains_everything(self):
        sim = Simulator()
        chan = Channel(
            sim, FixedLatency(1.0), np.random.default_rng(0),
            record_deliveries=True,
        )
        for i in range(20):
            chan.send(0, 1, "m", i, 8, lambda m: None)
        sim.run()
        assert [m.payload for m in chan.delivered] == list(range(20))

    def test_maxlen_bounds_the_buffer(self):
        sim = Simulator()
        chan = Channel(
            sim, FixedLatency(1.0), np.random.default_rng(0),
            record_deliveries=True, delivered_maxlen=5,
        )
        for i in range(20):
            chan.send(0, 1, "m", i, 8, lambda m: None)
        sim.run()
        assert [m.payload for m in chan.delivered] == list(range(15, 20))


class TestNetworkStatsReporting:
    def test_bytes_by_kind(self):
        sim = Simulator()
        chan = Channel(sim, FixedLatency(1.0), np.random.default_rng(0))
        chan.send(0, 1, "model", None, 800, lambda m: None)
        chan.send(0, 1, "model", None, 800, lambda m: None)
        chan.send(0, 2, "vote", None, 64, lambda m: None)
        assert chan.stats.bytes_by_kind == {"model": 1600, "vote": 64}
        assert chan.stats.by_kind == {"model": 2, "vote": 1}

    def test_summary_sorted_by_volume(self):
        sim = Simulator()
        chan = Channel(sim, FixedLatency(1.0), np.random.default_rng(0))
        chan.send(0, 1, "vote", None, 64, lambda m: None)
        chan.send(0, 1, "model", None, 800, lambda m: None)
        text = chan.stats.summary()
        lines = text.splitlines()
        assert lines[0] == "2 messages, 864 bytes"
        assert lines[1].strip().startswith("model:")  # heaviest first
        assert lines[2].strip().startswith("vote:")

    def test_summary_empty(self):
        from repro.sim.network import NetworkStats

        assert NetworkStats().summary() == "0 messages, 0 bytes"
