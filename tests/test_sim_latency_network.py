"""Tests for latency models and message channels."""

import numpy as np
import pytest

from repro.sim.engine import Simulator
from repro.sim.latency import (
    ExponentialLatency,
    FixedLatency,
    LogNormalLatency,
    StragglerLatency,
    UniformLatency,
)
from repro.sim.network import Channel


class TestLatencyModels:
    def test_fixed(self, rng):
        assert FixedLatency(2.5).sample(rng) == 2.5

    def test_fixed_validation(self):
        with pytest.raises(ValueError):
            FixedLatency(-1.0)

    def test_uniform_range(self, rng):
        model = UniformLatency(1.0, 3.0)
        samples = model.sample_many(rng, 200)
        assert samples.min() >= 1.0 and samples.max() <= 3.0

    def test_uniform_validation(self):
        with pytest.raises(ValueError):
            UniformLatency(3.0, 1.0)

    def test_exponential_mean(self, rng):
        model = ExponentialLatency(mean=2.0, minimum=1.0)
        samples = model.sample_many(rng, 3000)
        assert samples.min() >= 1.0
        np.testing.assert_allclose(samples.mean(), 3.0, rtol=0.15)

    def test_lognormal_median(self, rng):
        model = LogNormalLatency(median=5.0, sigma=0.3)
        samples = model.sample_many(rng, 3000)
        np.testing.assert_allclose(np.median(samples), 5.0, rtol=0.1)

    def test_straggler_tail(self):
        rng = np.random.default_rng(0)
        model = StragglerLatency(FixedLatency(1.0), p=0.2, factor=10.0)
        samples = model.sample_many(rng, 1000)
        frac_slow = float(np.mean(samples > 5.0))
        assert 0.1 < frac_slow < 0.3
        assert set(np.round(np.unique(samples), 6)) == {1.0, 10.0}

    def test_straggler_validation(self):
        with pytest.raises(ValueError):
            StragglerLatency(FixedLatency(1.0), p=1.5)
        with pytest.raises(ValueError):
            StragglerLatency(FixedLatency(1.0), factor=0.5)


class TestChannel:
    def _channel(self, latency=None):
        sim = Simulator()
        chan = Channel(sim, latency or FixedLatency(1.0), np.random.default_rng(0))
        return sim, chan

    def test_delivery_after_latency(self):
        sim, chan = self._channel(FixedLatency(2.0))
        delivered = []
        chan.send(0, 1, "m", "payload", 100, lambda m: delivered.append(m))
        sim.run()
        assert len(delivered) == 1
        assert delivered[0].delivered_at == 2.0
        assert delivered[0].payload == "payload"

    def test_stats_accounting(self):
        sim, chan = self._channel()
        chan.send(0, 1, "model", None, 800, lambda m: None)
        chan.send(0, 2, "vote", None, 64, lambda m: None)
        sim.run()
        assert chan.stats.messages == 2
        assert chan.stats.bytes == 864
        assert chan.stats.by_kind == {"model": 1, "vote": 1}

    def test_broadcast_is_unicasts(self):
        sim, chan = self._channel()
        received = []
        chan.broadcast(9, [1, 2, 3], "flag", 7, 10, lambda m: received.append(m.dst))
        sim.run()
        assert sorted(received) == [1, 2, 3]
        assert chan.stats.messages == 3

    def test_negative_size_rejected(self):
        _, chan = self._channel()
        with pytest.raises(ValueError):
            chan.send(0, 1, "m", None, -1, lambda m: None)

    def test_partial_synchrony_finite_delivery(self):
        """Every message is delivered at a finite time (Assumption 1)."""
        sim, chan = self._channel(ExponentialLatency(mean=5.0))
        count = []
        for i in range(50):
            chan.send(0, i, "m", None, 1, lambda m: count.append(1))
        sim.run()
        assert len(count) == 50
        assert np.isfinite(sim.now)
