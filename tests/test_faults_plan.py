"""Tests for fault plans: link faults, partitions, crash schedules."""

import pytest

from repro.faults import (
    CrashEvent,
    CrashSchedule,
    FaultPlan,
    FaultStats,
    LinkFaults,
    Partition,
)


class TestLinkFaults:
    def test_defaults_inactive(self):
        assert not LinkFaults().active

    def test_active_flags(self):
        assert LinkFaults(drop_probability=0.1).active
        assert LinkFaults(duplicate_probability=0.1).active
        assert LinkFaults(reorder_jitter=1.0).active

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkFaults(drop_probability=1.5)
        with pytest.raises(ValueError):
            LinkFaults(duplicate_probability=-0.1)
        with pytest.raises(ValueError):
            LinkFaults(reorder_jitter=-1.0)


class TestPartition:
    def test_severs_across_groups_in_window(self):
        p = Partition(10.0, 20.0, (frozenset({0, 1}), frozenset({2, 3})))
        assert p.severs(0, 2, 15.0)
        assert p.severs(3, 1, 10.0)
        assert not p.severs(0, 1, 15.0)  # same group
        assert not p.severs(0, 2, 9.9)  # before the window
        assert not p.severs(0, 2, 20.0)  # window is half-open

    def test_unlisted_nodes_form_the_rest_group(self):
        p = Partition(0.0, 10.0, (frozenset({0, 1}),))
        assert p.severs(0, 7, 5.0)  # listed vs rest
        assert not p.severs(7, 8, 5.0)  # rest vs rest

    def test_validation(self):
        with pytest.raises(ValueError):
            Partition(5.0, 5.0, (frozenset({0}),))
        with pytest.raises(ValueError):
            Partition(0.0, 1.0, ())
        with pytest.raises(ValueError):
            Partition(0.0, 1.0, (frozenset({0, 1}), frozenset({1, 2})))


class TestCrashSchedule:
    def test_crash_without_recovery_is_forever(self):
        sched = CrashSchedule((CrashEvent(3, at=5.0),))
        assert not sched.crashed(3, 4.9)
        assert sched.crashed(3, 5.0)
        assert sched.crashed(3, 1e9)
        assert not sched.crashed(4, 10.0)

    def test_recovery_window(self):
        sched = CrashSchedule((CrashEvent(3, at=5.0, recover_at=8.0),))
        assert sched.crashed(3, 6.0)
        assert not sched.crashed(3, 8.0)

    def test_devices_and_for_device(self):
        sched = CrashSchedule((CrashEvent(3, at=1.0), CrashEvent(1, at=2.0)))
        assert sched.devices() == [1, 3]
        assert len(sched.for_device(3)) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            CrashEvent(0, at=-1.0)
        with pytest.raises(ValueError):
            CrashEvent(0, at=5.0, recover_at=5.0)

    def test_empty_is_falsy(self):
        assert not CrashSchedule()
        assert CrashSchedule((CrashEvent(0, at=1.0),))


class TestFaultPlan:
    def test_default_plan_is_inactive(self):
        assert not FaultPlan().active

    def test_uniform_constructor(self):
        plan = FaultPlan.uniform(drop_probability=0.2, reorder_jitter=0.5)
        assert plan.active
        assert plan.link_faults(0, 1).drop_probability == 0.2
        assert plan.link_faults(5, 9).reorder_jitter == 0.5

    def test_per_link_override(self):
        plan = FaultPlan(
            default_link=LinkFaults(drop_probability=0.1),
            per_link={(0, 1): LinkFaults(drop_probability=0.9)},
        )
        assert plan.link_faults(0, 1).drop_probability == 0.9
        assert plan.link_faults(1, 0).drop_probability == 0.1  # directed

    def test_partitioned_queries_all_windows(self):
        plan = FaultPlan(
            partitions=(
                Partition(0.0, 5.0, (frozenset({0}), frozenset({1}))),
                Partition(10.0, 15.0, (frozenset({0}), frozenset({2}))),
            )
        )
        assert plan.active
        assert plan.partitioned(0, 1, 2.0)
        assert not plan.partitioned(0, 1, 7.0)
        assert plan.partitioned(2, 0, 12.0)

    def test_crashes_make_plan_active(self):
        plan = FaultPlan(crashes=CrashSchedule((CrashEvent(0, at=1.0),)))
        assert plan.active

    def test_rng_is_deterministic_and_independent(self):
        a = FaultPlan(seed=7).rng("transport")
        b = FaultPlan(seed=7).rng("transport")
        c = FaultPlan(seed=7).rng("rounds")
        assert a.random() == b.random()
        assert FaultPlan(seed=7).rng("transport").random() != c.random()

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(max_retries=-1)
        with pytest.raises(ValueError):
            FaultPlan(retry_backoff=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(leader_timeout=0.0)
        with pytest.raises(ValueError):
            FaultPlan(seed=-1)


class TestFaultStats:
    def test_as_dict_and_total(self):
        stats = FaultStats(dropped=3, duplicated=2, crash_drops=1)
        assert stats.as_dict()["dropped"] == 3
        assert stats.total_injected == 6

    def test_summary_mentions_counters(self):
        text = FaultStats(timeouts_fired=4).summary()
        assert "timeouts_fired=4" in text
        assert "dropped=0" in text
