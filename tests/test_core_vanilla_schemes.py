"""Tests for the vanilla-FL baseline and the scheme presets."""

import numpy as np
import pytest

from repro.attacks import Scaling
from repro.core.config import TrainingConfig
from repro.core.schemes import SCHEME_DESCRIPTIONS, scheme_config
from repro.core.vanilla import VanillaFLTrainer
from repro.data.partition import iid_partition
from repro.data.poisoning import poison_type1
from repro.data.synthetic_mnist import SyntheticMNIST, make_synthetic_mnist
from repro.nn.model import MLP
from repro.utils.seeding import SeedSequenceFactory


def vanilla_setup(n_clients=8, poison_ids=(), seed=0):
    seeds = SeedSequenceFactory(seed)
    cfg = SyntheticMNIST(side=8, noise_sigma=0.15)
    train, test = make_synthetic_mnist(n_clients * 80, 300, seeds.generator("d"), cfg)
    partition = iid_partition(train, n_clients, seeds.generator("p"))
    datasets = {}
    for cid, shard in enumerate(partition.shards):
        datasets[cid] = poison_type1(shard) if cid in poison_ids else shard
    model = MLP(64, (16,), 10, seeds.generator("i"))
    return datasets, model, test


TRAIN_CFG = TrainingConfig(local_iterations=8, batch_size=16, learning_rate=0.8)


class TestVanillaFL:
    def test_trains(self):
        datasets, model, test = vanilla_setup()
        trainer = VanillaFLTrainer(datasets, model, TRAIN_CFG, test, seed=1)
        history = trainer.run(20)
        assert history[-1].test_accuracy > 0.5

    def test_fedavg_poisoned_majority_collapses(self):
        """The vanilla failure mode of Table V: poisoned majority + linear
        aggregation drives accuracy to the constant-label level."""
        datasets, model, test = vanilla_setup(poison_ids=tuple(range(5)))
        trainer = VanillaFLTrainer(
            datasets, model, TRAIN_CFG, test, aggregator="fedavg", seed=1
        )
        trainer.run(15)
        assert trainer.history[-1].test_accuracy < 0.45

    def test_multikrum_resists_minority(self):
        datasets, model, test = vanilla_setup(poison_ids=(0, 1))
        trainer = VanillaFLTrainer(
            datasets,
            model,
            TRAIN_CFG,
            test,
            aggregator="multikrum",
            aggregator_options={"byzantine_fraction": 0.25},
            seed=1,
        )
        trainer.run(20)
        assert trainer.history[-1].test_accuracy > 0.5

    def test_model_attack(self):
        datasets, model, test = vanilla_setup()
        robust = VanillaFLTrainer(
            datasets,
            model,
            TRAIN_CFG,
            test,
            aggregator="median",
            byzantine=[0, 1],
            model_attack=Scaling(factor=-50.0),
            seed=2,
        )
        robust.run(18)
        datasets2, model2, test2 = vanilla_setup()
        fragile = VanillaFLTrainer(
            datasets2,
            model2,
            TRAIN_CFG,
            test2,
            aggregator="fedavg",
            byzantine=[0, 1],
            model_attack=Scaling(factor=-50.0),
            seed=2,
        )
        fragile.run(18)
        assert robust.history[-1].test_accuracy > 0.4
        assert robust.history[-1].test_accuracy > fragile.history[-1].test_accuracy

    def test_unknown_byzantine_id_rejected(self):
        datasets, model, test = vanilla_setup()
        with pytest.raises(ValueError):
            VanillaFLTrainer(datasets, model, TRAIN_CFG, test, byzantine=[99])

    def test_empty_clients_rejected(self):
        _, model, test = vanilla_setup()
        with pytest.raises(ValueError):
            VanillaFLTrainer({}, model, TRAIN_CFG, test)

    def test_deterministic(self):
        finals = []
        for _ in range(2):
            datasets, model, test = vanilla_setup(seed=3)
            trainer = VanillaFLTrainer(datasets, model, TRAIN_CFG, test, seed=3)
            trainer.run(3)
            finals.append(trainer.global_model.copy())
        np.testing.assert_array_equal(finals[0], finals[1])


class TestSchemes:
    def test_descriptions_cover_table3(self):
        assert set(SCHEME_DESCRIPTIONS) == {1, 2, 3, 4}
        assert SCHEME_DESCRIPTIONS[1]["partial"] == "bra"
        assert SCHEME_DESCRIPTIONS[1]["global"] == "cba"
        assert SCHEME_DESCRIPTIONS[2]["partial"] == "cba"
        assert SCHEME_DESCRIPTIONS[2]["global"] == "bra"
        assert SCHEME_DESCRIPTIONS[3] ["partial"] == "bra"
        assert SCHEME_DESCRIPTIONS[3]["global"] == "bra"
        assert SCHEME_DESCRIPTIONS[4]["partial"] == "cba"
        assert SCHEME_DESCRIPTIONS[4]["global"] == "cba"

    def test_scheme_config_mapping(self):
        for scheme in (1, 2, 3, 4):
            cfg = scheme_config(scheme)
            desc = SCHEME_DESCRIPTIONS[scheme]
            assert cfg.aggregation_for(1).kind == desc["partial"]
            assert cfg.aggregation_for(0).kind == desc["global"]

    def test_scheme_names_propagated(self):
        cfg = scheme_config(3, bra_name="median")
        assert cfg.aggregation_for(0).name == "median"
        assert cfg.aggregation_for(1).name == "median"

    def test_config_kwargs_forwarded(self):
        cfg = scheme_config(1, phi=0.8)
        assert cfg.phi == 0.8

    def test_invalid_scheme(self):
        with pytest.raises(ValueError):
            scheme_config(5)
