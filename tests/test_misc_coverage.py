"""Cross-cutting tests for smaller utilities and edge paths."""

import numpy as np
import pytest

from repro.consensus.validation import ModelValidator, upvote_matrix
from repro.data.dataset import Dataset
from repro.nn.model import MLP
from repro.utils.reporting import emit_report, results_dir
from repro.utils.tables import format_float


class TestFormatFloat:
    def test_digits(self):
        assert format_float(3.14159, 2) == "3.14"
        assert format_float(1.0) == "1.000"


class TestUpvoteMatrix:
    def test_all_equal_scores_all_upvoted(self):
        scores = np.full((3, 4), 0.8)
        assert upvote_matrix(scores, 0.05).all()

    def test_midrange_separates(self):
        scores = np.array([[0.9, 0.88, 0.1]])
        votes = upvote_matrix(scores, 0.05)
        np.testing.assert_array_equal(votes, [[True, True, False]])

    def test_margin_widens_acceptance(self):
        scores = np.array([[1.0, 0.4, 0.0]])
        strict = upvote_matrix(scores, 0.0)
        loose = upvote_matrix(scores, 0.2)
        assert strict.sum() <= loose.sum()
        assert not strict[0, 1] and loose[0, 1]

    def test_negative_margin_rejected(self):
        with pytest.raises(ValueError):
            upvote_matrix(np.zeros((2, 2)), -0.1)


class TestModelValidatorCycling:
    def _validator(self, rng, n_shards=2):
        model = MLP(8, (4,), 3, rng)
        shards = [
            Dataset(rng.random((10, 8)), rng.integers(0, 3, 10), 3)
            for _ in range(n_shards)
        ]
        return ModelValidator(model, shards)

    def test_score_matrix_default_size(self, rng):
        validator = self._validator(rng)
        proposals = rng.standard_normal((3, validator.template.n_params))
        assert validator.score_matrix(proposals).shape == (2, 3)

    def test_cycling_to_more_members(self, rng):
        validator = self._validator(rng)
        proposals = rng.standard_normal((3, validator.template.n_params))
        scores = validator.score_matrix(proposals, n_members=5)
        assert scores.shape == (5, 3)
        # cycled rows repeat the shard scores
        np.testing.assert_array_equal(scores[0], scores[2])
        np.testing.assert_array_equal(scores[1], scores[3])

    def test_truncation_to_fewer_members(self, rng):
        validator = self._validator(rng, n_shards=3)
        proposals = rng.standard_normal((2, validator.template.n_params))
        assert validator.score_matrix(proposals, n_members=1).shape == (1, 2)

    def test_empty_shard_rejected(self, rng):
        model = MLP(8, (4,), 3, rng)
        empty = Dataset(np.zeros((0, 8)), np.zeros(0, dtype=int), 3)
        with pytest.raises(ValueError):
            ModelValidator(model, [empty])

    def test_no_shards_rejected(self, rng):
        with pytest.raises(ValueError):
            ModelValidator(MLP(8, (4,), 3, rng), [])


class TestReporting:
    def test_emit_writes_file(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "reports"))
        path = emit_report("sample", "hello table")
        assert path.read_text().strip() == "hello table"
        assert "hello table" in capsys.readouterr().out

    def test_results_dir_created(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "r2"))
        assert results_dir().is_dir()

    def test_invalid_name_rejected(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        with pytest.raises(ValueError):
            emit_report("a/b", "x")
        with pytest.raises(ValueError):
            emit_report("", "x")


class TestModelGradsFlat:
    def test_get_flat_grads_shape(self, rng):
        from repro.nn.losses import SoftmaxCrossEntropy

        model = MLP(6, (4,), 3, rng)
        X = rng.standard_normal((5, 6))
        y = rng.integers(0, 3, 5)
        loss = SoftmaxCrossEntropy()
        loss.forward(model.forward(X, train=True), y)
        model.backward(loss.backward())
        grads = model.get_flat_grads()
        assert grads.shape == (model.n_params,)
        assert np.abs(grads).sum() > 0
