"""Tests for the tolerance analysis (Theorems 1-3, Corollaries 1-3)."""

import numpy as np
import pytest

from repro.topology.analysis import (
    TwoTypeTree,
    acsm_max_byzantine_fraction,
    brute_force_type1_counts,
    levels_needed_for_tolerance,
    max_byzantine_count,
    max_byzantine_fraction,
    min_honest_fraction,
    nodes_at_level,
    paper_worked_example,
    relative_reliable_number,
    type1_count,
    type1_fraction,
)


class TestTheorem1:
    def test_root_level(self):
        assert type1_count(0.5, 4, 0) == 1.0
        assert type1_fraction(0.5, 0) == 1.0

    def test_closed_form(self):
        assert type1_count(0.5, 4, 2) == 4.0  # (0.5*4)^2
        assert type1_fraction(0.5, 2) == 0.25

    def test_matches_brute_force(self):
        for m, p, depth in [(4, 0.75, 3), (4, 0.5, 4), (3, 1 / 3, 3), (2, 1.0, 5)]:
            counts = brute_force_type1_counts(m, p, depth)
            for level, count in enumerate(counts):
                assert count == round(type1_count(p, m, level)), (m, p, level)

    def test_fraction_matches_brute_force(self):
        tree = TwoTypeTree.generate(m=4, p=0.75, depth=3)
        for level, frac in enumerate(tree.type1_fractions()):
            np.testing.assert_allclose(frac, type1_fraction(0.75, level))

    def test_non_integral_pm_rejected(self):
        with pytest.raises(ValueError):
            TwoTypeTree.generate(m=4, p=0.3, depth=2)

    def test_validation(self):
        with pytest.raises(ValueError):
            type1_count(1.5, 4, 0)
        with pytest.raises(ValueError):
            type1_count(0.5, 0, 0)
        with pytest.raises(ValueError):
            type1_fraction(0.5, -1)


class TestCorollary1:
    def test_node_counts(self):
        assert nodes_at_level(4, 4, 0) == 4
        assert nodes_at_level(4, 4, 1) == 16
        assert nodes_at_level(4, 4, 2) == 64

    def test_validation(self):
        with pytest.raises(ValueError):
            nodes_at_level(0, 4, 0)


class TestTheorem2:
    def test_paper_worked_example(self):
        """gamma1 = gamma2 = 25%, l = 2 -> 57.8125 %."""
        np.testing.assert_allclose(paper_worked_example(), 0.578125)
        np.testing.assert_allclose(
            max_byzantine_fraction(0.25, 0.25, 2), 0.578125
        )

    def test_level_zero_is_gamma1(self):
        assert max_byzantine_fraction(0.3, 0.1, 0) == pytest.approx(0.3)

    def test_count_formula(self):
        # N_t=4, m=4, l=2, g1=g2=0.25:
        # 4*16 - 0.75*4*(0.75*4)^2 = 64 - 3*9 = 37
        assert max_byzantine_count(4, 4, 2, 0.25, 0.25) == pytest.approx(37.0)

    def test_count_and_fraction_consistent(self):
        for level in range(4):
            count = max_byzantine_count(4, 4, level, 0.25, 0.25)
            total = nodes_at_level(4, 4, level)
            np.testing.assert_allclose(
                count / total, max_byzantine_fraction(0.25, 0.25, level)
            )

    def test_complement(self):
        assert min_honest_fraction(0.25, 0.25, 2) == pytest.approx(1 - 0.578125)

    def test_matches_tree_count(self):
        """Honest count at each level of a (1-gamma2)-ratio tree equals the
        Theorem-2 honest floor (single-tree case N_t=1, gamma1=0)."""
        gamma2 = 0.25
        tree = TwoTypeTree.generate(m=4, p=1 - gamma2, depth=3)
        for level, honest in enumerate(tree.type1_counts()):
            bound = nodes_at_level(1, 4, level) - max_byzantine_count(
                1, 4, level, 0.0, gamma2
            )
            np.testing.assert_allclose(honest, bound)


class TestCorollaries23:
    def test_corollary2_monotone_in_level(self):
        fracs = [max_byzantine_fraction(0.25, 0.25, l) for l in range(6)]
        assert all(a < b for a, b in zip(fracs, fracs[1:]))

    def test_corollary3_deeper_tolerates_more(self):
        shallow = max_byzantine_fraction(0.25, 0.25, 1)
        deep = max_byzantine_fraction(0.25, 0.25, 4)
        assert deep > shallow

    def test_levels_needed(self):
        assert levels_needed_for_tolerance(0.25, 0.25, 0.25) == 0
        assert levels_needed_for_tolerance(0.25, 0.25, 0.5) == 2
        assert levels_needed_for_tolerance(0.25, 0.25, 0.578) == 2

    def test_levels_needed_unreachable(self):
        with pytest.raises(ValueError):
            levels_needed_for_tolerance(0.1, 0.0, 0.5)


class TestTheorem3ACSM:
    def test_relative_reliable_number(self):
        psi = relative_reliable_number([4, 4, 2], [True, False, True])
        np.testing.assert_allclose(psi, 6 / 10)

    def test_bound_monotone_in_psi(self):
        # larger psi -> smaller tolerated Byzantine proportion
        lo = acsm_max_byzantine_fraction(0.25, 0.9)
        hi = acsm_max_byzantine_fraction(0.25, 0.3)
        assert lo < hi

    def test_bound_formula(self):
        np.testing.assert_allclose(
            acsm_max_byzantine_fraction(0.25, 0.8), 1 - 0.75 * 0.8
        )

    def test_all_honest_clusters(self):
        # psi = 1 recovers the per-cluster bound gamma2
        np.testing.assert_allclose(acsm_max_byzantine_fraction(0.25, 1.0), 0.25)

    def test_bound_holds_on_random_acsm(self):
        """Realized Byzantine share at a level never exceeds the bound when
        every honest cluster respects gamma2."""
        rng = np.random.default_rng(7)
        gamma2 = 0.25
        for _ in range(20):
            n_clusters = rng.integers(2, 8)
            sizes = rng.integers(2, 12, size=n_clusters)
            honest = rng.random(n_clusters) < 0.6
            if not honest.any():
                honest[0] = True
            byz_counts = np.where(
                honest,
                np.floor(gamma2 * sizes),  # honest clusters obey gamma2
                sizes,                      # Byzantine clusters may be fully bad
            )
            realized = byz_counts.sum() / sizes.sum()
            psi = relative_reliable_number(sizes, honest)
            bound = acsm_max_byzantine_fraction(gamma2, psi)
            assert realized <= bound + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            relative_reliable_number([1, 2], [True])
        with pytest.raises(ValueError):
            relative_reliable_number([], [])
        with pytest.raises(ValueError):
            acsm_max_byzantine_fraction(0.25, 1.5)
