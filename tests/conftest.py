"""Shared fixtures: small deterministic datasets, models and hierarchies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.check import sanitize
from repro.data.dataset import Dataset
from repro.data.synthetic_mnist import SyntheticMNIST, make_synthetic_mnist
from repro.nn.model import MLP
from repro.topology.tree import build_ecsm


@pytest.fixture(autouse=True)
def _sanitizers_always_on():
    """Run every test with the repro.check sanitizers enabled.

    Production code keeps them opt-in (config/env); the test suite is
    where a NaN, overflow, or consensus-invariant break must never slip
    through silently.  The context manager restores the previous state,
    so tests exercising enable/disable semantics stay isolated.
    """
    with sanitize.sanitized(True):
        yield


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_dataset(rng: np.random.Generator) -> Dataset:
    """200-sample, 36-feature synthetic digits."""
    train, _ = make_synthetic_mnist(
        200, 50, rng, config=SyntheticMNIST(side=8, noise_sigma=0.2)
    )
    return train


@pytest.fixture
def tiny_test_set(rng: np.random.Generator) -> Dataset:
    _, test = make_synthetic_mnist(
        200, 100, rng, config=SyntheticMNIST(side=8, noise_sigma=0.2)
    )
    return test


@pytest.fixture
def tiny_model(rng: np.random.Generator) -> MLP:
    return MLP(in_dim=64, hidden=(16,), n_classes=10, rng=rng)


@pytest.fixture
def paper_hierarchy():
    """The Appendix D topology: 3 levels, cluster size 4, 4 top, 64 clients."""
    return build_ecsm(n_levels=3, cluster_size=4, n_top=4)


@pytest.fixture
def small_hierarchy():
    """2 levels: one top cluster of 3, bottom of 3 clusters x 3 = 9 clients."""
    return build_ecsm(n_levels=2, cluster_size=3, n_top=3)
