"""Tests for the event-driven pipeline run (Figure 2)."""

import math

import numpy as np
import pytest

from repro.pipeline.event_run import EventDrivenRun, TimingConfig
from repro.sim.latency import FixedLatency, UniformLatency


def quick_config(**overrides):
    defaults = dict(
        local_compute=FixedLatency(10.0),
        partial_aggregate=FixedLatency(1.0),
        global_aggregate=FixedLatency(5.0),
        link=FixedLatency(0.1),
    )
    defaults.update(overrides)
    return TimingConfig(**defaults)


class TestEventDrivenRun:
    def test_all_rounds_complete(self, paper_hierarchy):
        run = EventDrivenRun(paper_hierarchy, quick_config(), flag_level=1)
        timings = run.run(3)
        n_bottom_clusters = 16
        finished = [t for t in timings if math.isfinite(t.global_arrival)]
        assert len(finished) == 3 * n_bottom_clusters

    def test_causality(self, paper_hierarchy):
        run = EventDrivenRun(paper_hierarchy, quick_config(), flag_level=1)
        for t in run.run(3):
            if math.isfinite(t.flag_arrival):
                assert t.flag_arrival > t.first_upload
            if math.isfinite(t.global_arrival):
                assert t.global_arrival > t.first_upload
                # flag (partial) always returns before the global model
                assert t.flag_arrival <= t.global_arrival

    def test_efficiency_in_unit_interval(self, paper_hierarchy):
        run = EventDrivenRun(paper_hierarchy, quick_config(), flag_level=1)
        run.run(4)
        effs = run.efficiencies()
        assert effs.size > 0
        assert np.all(effs >= 0.0) and np.all(effs <= 1.0)

    def test_pipelining_overlaps_rounds(self, paper_hierarchy):
        """With a slow global phase, round r+1 training starts before round
        r's global model arrives — the defining property of Fig. 2."""
        cfg = quick_config(global_aggregate=FixedLatency(50.0))
        run = EventDrivenRun(paper_hierarchy, cfg, flag_level=1)
        timings = {(t.round_index, t.cluster_index): t for t in run.run(2)}
        t0 = timings[(0, 0)]
        t1 = timings[(1, 0)]
        # round 1's first upload happens before round 0's global arrival
        assert t1.first_upload < t0.global_arrival

    def test_flag_at_top_serialises(self, paper_hierarchy):
        """flag_level=0 removes the overlap: next round starts only after
        the global model lands."""
        cfg = quick_config(global_aggregate=FixedLatency(50.0))
        run = EventDrivenRun(paper_hierarchy, cfg, flag_level=0)
        timings = {(t.round_index, t.cluster_index): t for t in run.run(2)}
        t0 = timings[(0, 0)]
        t1 = timings[(1, 0)]
        assert t1.first_upload > t0.global_arrival

    def test_deeper_flag_level_faster_rounds(self, paper_hierarchy):
        """Pipelined rounds complete faster than serialised ones."""
        cfg = quick_config(global_aggregate=FixedLatency(30.0))
        pipelined = EventDrivenRun(paper_hierarchy, cfg, flag_level=1, seed=1)
        pipelined.run(5)
        serial = EventDrivenRun(paper_hierarchy, cfg, flag_level=0, seed=1)
        serial.run(5)
        assert pipelined.sim.now < serial.sim.now

    def test_quorum_speeds_collection(self, paper_hierarchy):
        slow = EventDrivenRun(
            paper_hierarchy,
            quick_config(local_compute=UniformLatency(5.0, 50.0), phi=1.0),
            flag_level=1,
            seed=3,
        )
        slow.run(3)
        fast = EventDrivenRun(
            paper_hierarchy,
            quick_config(local_compute=UniformLatency(5.0, 50.0), phi=0.5),
            flag_level=1,
            seed=3,
        )
        fast.run(3)
        assert fast.sim.now < slow.sim.now

    def test_round_durations(self, paper_hierarchy):
        run = EventDrivenRun(paper_hierarchy, quick_config(), flag_level=1)
        run.run(4)
        durations = run.round_durations()
        assert durations.shape == (4,)
        assert np.all(durations > 0)

    def test_determinism(self, paper_hierarchy):
        cfg = quick_config(local_compute=UniformLatency(5.0, 20.0))
        a = EventDrivenRun(paper_hierarchy, cfg, flag_level=1, seed=7)
        a.run(3)
        b = EventDrivenRun(paper_hierarchy, cfg, flag_level=1, seed=7)
        b.run(3)
        assert a.sim.now == b.sim.now
        assert np.array_equal(a.efficiencies(), b.efficiencies())

    def test_flag_level_validation(self, paper_hierarchy):
        with pytest.raises(ValueError):
            EventDrivenRun(paper_hierarchy, quick_config(), flag_level=2)

    def test_rounds_validation(self, paper_hierarchy):
        run = EventDrivenRun(paper_hierarchy, quick_config(), flag_level=1)
        with pytest.raises(ValueError):
            run.run(0)

    def test_phi_validation(self):
        with pytest.raises(ValueError):
            quick_config(phi=0.0)
