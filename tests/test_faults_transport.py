"""Tests for the unreliable transport (:class:`FaultyChannel`)."""

import numpy as np
import pytest

from repro.faults import (
    CrashEvent,
    CrashSchedule,
    FaultPlan,
    FaultyChannel,
    Partition,
)
from repro.sim.engine import Simulator
from repro.sim.latency import FixedLatency
from repro.sim.network import Channel


def make_channel(plan, latency=1.0, seed=0):
    sim = Simulator()
    channel = FaultyChannel(
        sim, FixedLatency(latency), np.random.default_rng(seed), plan=plan
    )
    return sim, channel


class TestDropAndDuplicate:
    def test_drop_rate_is_roughly_honoured(self):
        plan = FaultPlan.uniform(drop_probability=0.3, seed=1)
        sim, channel = make_channel(plan)
        delivered = []
        n = 500
        for i in range(n):
            channel.send(0, 1, "m", i, 10, delivered.append)
        sim.run()
        assert channel.fault_stats.dropped == n - len(delivered)
        # 0.3 +/- 5 sigma on 500 trials
        assert 0.2 < channel.fault_stats.dropped / n < 0.4
        # every transmission still hits the wire accounting
        assert channel.stats.messages == n

    def test_duplicate_delivers_twice(self):
        plan = FaultPlan.uniform(duplicate_probability=1.0, seed=2)
        sim, channel = make_channel(plan)
        delivered = []
        channel.send(0, 1, "m", "x", 10, delivered.append)
        sim.run()
        assert len(delivered) == 2
        assert channel.fault_stats.duplicated == 1
        assert all(m.payload == "x" for m in delivered)

    def test_reorder_jitter_shifts_delivery(self):
        plan = FaultPlan.uniform(reorder_jitter=5.0, seed=3)
        sim, channel = make_channel(plan, latency=1.0)
        delivered = []
        channel.send(0, 1, "m", None, 1, delivered.append)
        sim.run()
        assert 1.0 <= delivered[0].delivered_at <= 6.0

    def test_zero_rate_plan_matches_reliable_channel(self):
        """The cornerstone guarantee: a no-op plan is bit-identical."""
        plain_sim = Simulator()
        plain = Channel(plain_sim, FixedLatency(1.0), np.random.default_rng(7))
        faulty_sim, faulty = make_channel(FaultPlan(), seed=7)

        plain_log, faulty_log = [], []
        for i in range(50):
            plain.send(0, 1, "m", i, 8, lambda m: plain_log.append(
                (m.payload, m.delivered_at)))
            faulty.send(0, 1, "m", i, 8, lambda m: faulty_log.append(
                (m.payload, m.delivered_at)))
        plain_sim.run()
        faulty_sim.run()
        assert plain_log == faulty_log
        assert faulty.fault_stats.total_injected == 0


class TestPartition:
    def test_partition_window_severs_then_heals(self):
        plan = FaultPlan(
            partitions=(Partition(5.0, 10.0, (frozenset({0}), frozenset({1}))),)
        )
        sim, channel = make_channel(plan)
        delivered = []

        sim.schedule_at(6.0, lambda: channel.send(0, 1, "m", "cut", 1,
                                                  delivered.append))
        sim.schedule_at(11.0, lambda: channel.send(0, 1, "m", "healed", 1,
                                                   delivered.append))
        sim.run()
        assert [m.payload for m in delivered] == ["healed"]
        assert channel.fault_stats.partition_drops == 1

    def test_same_side_traffic_unaffected(self):
        plan = FaultPlan(
            partitions=(Partition(0.0, 100.0, (frozenset({0, 1}), frozenset({2})),),)
        )
        sim, channel = make_channel(plan)
        delivered = []
        channel.send(0, 1, "m", None, 1, delivered.append)
        sim.run()
        assert len(delivered) == 1


class TestRetry:
    def test_retry_recovers_a_dropped_message(self):
        # drop everything, but a partition-free retry plan can't win;
        # instead drop with p=1 only for the first attempts via seed search
        # is fragile — use a partition that heals mid-backoff instead.
        plan = FaultPlan(
            partitions=(Partition(0.0, 1.0, (frozenset({0}), frozenset({1}))),),
            max_retries=3,
            retry_backoff=0.6,
        )
        sim, channel = make_channel(plan)
        delivered = []
        channel.send_with_retry(0, 1, "m", "persist", 4, delivered.append)
        sim.run()
        # attempt 0 at t=0 severed; attempt 1 at t=0.6 severed; attempt 2
        # at t=1.8 goes through the healed network.
        assert [m.payload for m in delivered] == ["persist"]
        assert channel.fault_stats.partition_drops == 2
        assert channel.fault_stats.retries == 2

    def test_retry_budget_is_bounded(self):
        plan = FaultPlan(
            partitions=(Partition(0.0, 1e9, (frozenset({0}), frozenset({1}))),),
            max_retries=2,
            retry_backoff=0.5,
        )
        sim, channel = make_channel(plan)
        delivered = []
        channel.send_with_retry(0, 1, "m", None, 4, delivered.append)
        sim.run()
        assert delivered == []
        assert channel.fault_stats.retries == 2
        assert channel.fault_stats.partition_drops == 3  # initial + 2 retries

    def test_plain_send_never_retries(self):
        plan = FaultPlan(
            partitions=(Partition(0.0, 1e9, (frozenset({0}), frozenset({1}))),),
            max_retries=5,
        )
        sim, channel = make_channel(plan)
        channel.send(0, 1, "m", None, 4, lambda m: None)
        sim.run()
        assert channel.fault_stats.retries == 0

    def test_negative_retry_override_rejected(self):
        sim, channel = make_channel(FaultPlan())
        with pytest.raises(ValueError):
            channel.send_with_retry(0, 1, "m", None, 4, lambda m: None,
                                    max_retries=-1)


class TestCrashes:
    def test_crashed_sender_emits_nothing(self):
        plan = FaultPlan(crashes=CrashSchedule((CrashEvent(0, at=0.0),)))
        sim, channel = make_channel(plan)
        delivered = []
        channel.send(0, 1, "m", None, 4, delivered.append)
        sim.run()
        assert delivered == []
        assert channel.stats.messages == 0  # never hit the wire
        assert channel.fault_stats.crash_drops == 1

    def test_receiver_crash_drops_in_flight_message(self):
        # sent at t=0, delivery due t=1, dst crashes at t=0.5
        plan = FaultPlan(crashes=CrashSchedule((CrashEvent(1, at=0.5),)))
        sim, channel = make_channel(plan)
        delivered = []
        channel.send(0, 1, "m", None, 4, delivered.append)
        sim.run()
        assert delivered == []
        assert channel.stats.messages == 1  # it did hit the wire
        assert channel.fault_stats.crash_drops == 1

    def test_recovered_receiver_gets_later_messages(self):
        plan = FaultPlan(
            crashes=CrashSchedule((CrashEvent(1, at=0.0, recover_at=5.0),))
        )
        sim, channel = make_channel(plan)
        delivered = []
        sim.schedule_at(6.0, lambda: channel.send(0, 1, "m", "back", 4,
                                                  delivered.append))
        sim.run()
        assert [m.payload for m in delivered] == ["back"]


class TestDeterminism:
    def test_same_plan_seed_same_fault_trace(self):
        def trace(seed):
            plan = FaultPlan.uniform(
                drop_probability=0.4, duplicate_probability=0.2, seed=seed
            )
            sim, channel = make_channel(plan, seed=99)
            log = []
            for i in range(100):
                channel.send(0, 1, "m", i, 1, lambda m: log.append(m.payload))
            sim.run()
            return log, channel.fault_stats.as_dict()

        assert trace(11) == trace(11)
        assert trace(11) != trace(12)
