"""Tests for the experiment harness (reduced-scale)."""

from dataclasses import replace

import numpy as np
import pytest

from repro.experiments import (
    ExperimentConfig,
    build_abdhfl_trainer,
    build_vanilla_trainer,
    prepare_data,
    run_defence_matrix,
    run_figure3,
    gradient_gap,
)
from repro.experiments.table5 import Table5Cell, format_table5, run_cell
from repro.experiments.theorem2 import run_theorem2
from repro.experiments.schemes import run_scheme_comparison


TINY = ExperimentConfig(
    n_levels=2,
    cluster_size=4,
    n_top=2,
    image_side=8,
    samples_per_client=50,
    n_test=200,
    n_rounds=4,
    hidden=(16,),
)


class TestExperimentConfig:
    def test_paper_dimensions(self):
        cfg = ExperimentConfig()
        assert cfg.n_clients == 64  # 4 * 4^2

    def test_paper_scale(self):
        cfg = ExperimentConfig.paper_scale()
        assert cfg.image_side == 28
        assert cfg.samples_per_client == 937
        assert cfg.n_rounds == 200
        assert cfg.n_test == 10_000

    def test_for_distribution_switches_aggregator(self):
        iid = ExperimentConfig().for_distribution(True)
        noniid = ExperimentConfig().for_distribution(False)
        assert iid.partial_aggregator == "multikrum"
        assert noniid.partial_aggregator == "median"


class TestPrepareData:
    def test_shards_for_all_clients(self):
        data = prepare_data(replace(TINY, malicious_fraction=0.25))
        assert set(data.client_datasets) == set(data.hierarchy.bottom_clients())
        assert len(data.byzantine) == 2  # 25% of 8

    def test_byzantine_shards_poisoned(self):
        data = prepare_data(
            replace(TINY, malicious_fraction=0.25, attack="type1")
        )
        for cid in data.byzantine:
            assert np.all(data.client_datasets[cid].y == 9)
        honest = set(data.hierarchy.bottom_clients()) - set(data.byzantine)
        for cid in sorted(honest):
            assert len(np.unique(data.client_datasets[cid].y)) > 1

    def test_noniid_honest_cover(self):
        cfg = replace(TINY, iid=False, malicious_fraction=0.25, samples_per_client=60)
        data = prepare_data(cfg)
        honest = set(data.hierarchy.bottom_clients()) - set(data.byzantine)
        covered = set()
        for cid in sorted(honest):
            covered.update(np.unique(data.client_datasets[cid].y).tolist())
        assert covered == set(range(10))

    def test_deterministic(self):
        d1 = prepare_data(TINY)
        d2 = prepare_data(TINY)
        np.testing.assert_array_equal(
            d1.client_datasets[0].X, d2.client_datasets[0].X
        )
        np.testing.assert_array_equal(
            d1.model_template.get_flat(), d2.model_template.get_flat()
        )


class TestBuilders:
    def test_both_trainers_share_data(self):
        data = prepare_data(TINY)
        abd = build_abdhfl_trainer(TINY, data)
        van = build_vanilla_trainer(TINY, data)
        np.testing.assert_array_equal(abd.global_model, van.global_model)
        assert set(abd.trainers) == set(van.trainers)

    def test_run_cell(self):
        cell = run_cell(TINY, n_runs=1)
        assert isinstance(cell, Table5Cell)
        assert 0.0 <= cell.abdhfl_accuracy <= 1.0
        assert 0.0 <= cell.vanilla_accuracy <= 1.0

    def test_format_table5(self):
        cells = [
            Table5Cell(True, "type1", 0.0, 0.9, 0.89),
            Table5Cell(True, "type1", 0.5, 0.88, 0.10),
        ]
        rendered = format_table5(cells)
        assert "ABD-HFL" in rendered and "Vanilla FL" in rendered
        assert "50.0%" in rendered and "0.0%" in rendered


class TestFigure3:
    def test_curve_structure(self):
        abd, van = run_figure3(TINY, n_runs=2)
        assert abd.mean.shape == (TINY.n_rounds,)
        assert abd.runs.shape == (2, TINY.n_rounds)
        assert np.all(abd.ci_half_width >= 0)
        assert abd.label == "ABD-HFL" and van.label == "Vanilla FL"

    def test_n_runs_validation(self):
        with pytest.raises(ValueError):
            run_figure3(TINY, n_runs=0)


class TestTheorem2Experiment:
    def test_bound_and_points(self):
        bound, points = run_theorem2(
            replace(TINY, n_levels=2, n_rounds=2),
            fractions=(0.0, 0.5),
            gamma1=0.25,
            gamma2=0.25,
        )
        # 2 levels -> bottom level 1 -> 1 - 0.75*0.75 = 0.4375
        assert bound == pytest.approx(0.4375)
        assert len(points) == 2
        assert points[0].below_bound and not points[1].below_bound


class TestSchemeComparison:
    def test_all_schemes_run(self):
        outcomes = run_scheme_comparison(
            replace(TINY, malicious_fraction=0.25, n_rounds=2)
        )
        assert [o.scheme for o in outcomes] == [1, 2, 3, 4]
        for o in outcomes:
            assert 0.0 <= o.final_accuracy <= 1.0
            assert o.analytic_model_messages > 0

    def test_cost_ordering_matches_table4(self):
        outcomes = run_scheme_comparison(
            replace(TINY, malicious_fraction=0.25, n_rounds=2)
        )
        by_scheme = {o.scheme: o.analytic_model_messages for o in outcomes}
        assert by_scheme[3] == min(by_scheme.values())
        assert by_scheme[4] == max(by_scheme.values())


class TestDefenceMatrix:
    def test_gap_metric_clean(self):
        # With no attack, averaging n honest updates leaves a gap of about
        # sqrt(dim / n) noise units (dim=64, n=20 -> ~1.8).
        gap = gradient_gap("fedavg", "none", byzantine_fraction=0.0)
        assert gap < 3.0
        # and it is far below the single-update error (~sqrt(dim) = 8)
        assert gap < 0.5 * np.sqrt(64)

    def test_fedavg_broken_by_scaling(self):
        broken = gradient_gap("fedavg", "scaling", byzantine_fraction=0.25)
        robust = gradient_gap("median", "scaling", byzantine_fraction=0.25)
        assert broken > 10 * robust

    def test_matrix_shape(self):
        cells = run_defence_matrix(
            defences=("fedavg", "median"),
            attacks=("sign_flip", "ipm"),
            n_trials=2,
        )
        assert len(cells) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            gradient_gap("median", "ipm", byzantine_fraction=1.0)
