"""Tests for loss functions."""

import numpy as np
import pytest

from repro.nn.losses import MSELoss, SoftmaxCrossEntropy, log_softmax


class TestLogSoftmax:
    def test_normalises(self, rng):
        logits = rng.standard_normal((5, 10))
        logp = log_softmax(logits)
        np.testing.assert_allclose(np.exp(logp).sum(axis=1), 1.0, atol=1e-12)

    def test_shift_invariance(self, rng):
        logits = rng.standard_normal((3, 4))
        np.testing.assert_allclose(
            log_softmax(logits), log_softmax(logits + 100.0), atol=1e-9
        )

    def test_large_logits_stable(self):
        logits = np.array([[1000.0, -1000.0]])
        logp = log_softmax(logits)
        assert np.isfinite(logp).all()


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_near_zero(self):
        loss = SoftmaxCrossEntropy()
        logits = np.array([[100.0, 0.0, 0.0]])
        assert loss.forward(logits, np.array([0])) < 1e-6

    def test_uniform_prediction(self):
        loss = SoftmaxCrossEntropy()
        value = loss.forward(np.zeros((4, 10)), np.zeros(4, dtype=int))
        np.testing.assert_allclose(value, np.log(10), atol=1e-9)

    def test_gradient_formula(self, rng):
        loss = SoftmaxCrossEntropy()
        logits = rng.standard_normal((6, 5))
        targets = rng.integers(0, 5, size=6)
        loss.forward(logits, targets)
        grad = loss.backward()
        # grad = (softmax - onehot)/batch
        probs = np.exp(log_softmax := logits - logits.max(1, keepdims=True))
        probs = probs / probs.sum(1, keepdims=True)
        expected = probs.copy()
        expected[np.arange(6), targets] -= 1
        expected /= 6
        np.testing.assert_allclose(grad, expected, atol=1e-12)

    def test_gradient_numerically(self, rng):
        loss = SoftmaxCrossEntropy()
        logits = rng.standard_normal((3, 4))
        targets = np.array([0, 2, 1])
        loss.forward(logits, targets)
        grad = loss.backward()
        eps = 1e-6
        for i in range(3):
            for j in range(4):
                logits[i, j] += eps
                plus = SoftmaxCrossEntropy().forward(logits, targets)
                logits[i, j] -= 2 * eps
                minus = SoftmaxCrossEntropy().forward(logits, targets)
                logits[i, j] += eps
                np.testing.assert_allclose(
                    grad[i, j], (plus - minus) / (2 * eps), atol=1e-5
                )

    def test_rejects_bad_shapes(self):
        loss = SoftmaxCrossEntropy()
        with pytest.raises(ValueError):
            loss.forward(np.zeros(5), np.zeros(5, dtype=int))
        with pytest.raises(ValueError):
            loss.forward(np.zeros((3, 2)), np.zeros(4, dtype=int))

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            SoftmaxCrossEntropy().backward()


class TestMSELoss:
    def test_zero_for_equal(self, rng):
        x = rng.standard_normal((3, 3))
        assert MSELoss().forward(x, x.copy()) == 0.0

    def test_value(self):
        loss = MSELoss()
        value = loss.forward(np.array([[1.0, 2.0]]), np.array([[0.0, 0.0]]))
        np.testing.assert_allclose(value, 2.5)

    def test_gradient(self):
        loss = MSELoss()
        pred = np.array([[1.0, 2.0]])
        loss.forward(pred, np.zeros((1, 2)))
        np.testing.assert_allclose(loss.backward(), pred * (2.0 / 2))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            MSELoss().forward(np.zeros((2, 2)), np.zeros((2, 3)))
