"""Tests for SGD and learning-rate schedules."""

import numpy as np
import pytest

from repro.nn.losses import MSELoss
from repro.nn.model import MLP
from repro.nn.optim import SGD, ConstantLR, StepDecayLR


class TestSchedules:
    def test_constant(self):
        assert ConstantLR(0.1).lr(0) == 0.1
        assert ConstantLR(0.1).lr(1000) == 0.1

    def test_constant_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ConstantLR(0.0)

    def test_step_decay(self):
        sched = StepDecayLR(1.0, step_size=10, gamma=0.5)
        assert sched.lr(0) == 1.0
        assert sched.lr(9) == 1.0
        assert sched.lr(10) == 0.5
        assert sched.lr(25) == 0.25

    def test_step_decay_validation(self):
        with pytest.raises(ValueError):
            StepDecayLR(1.0, step_size=0)
        with pytest.raises(ValueError):
            StepDecayLR(1.0, step_size=5, gamma=1.5)


class TestSGD:
    def _grad_setup(self, rng, **kwargs):
        model = MLP(4, (3,), 2, rng)
        opt = SGD(model, schedule=0.1, **kwargs)
        x = rng.standard_normal((8, 4))
        y = rng.standard_normal((8, 2))
        loss = MSELoss()
        value = loss.forward(model.forward(x, train=True), y)
        model.backward(loss.backward())
        return model, opt, value

    def test_plain_step_moves_against_gradient(self, rng):
        model, opt, _ = self._grad_setup(rng)
        before = model.get_flat()
        grads = model.get_flat_grads()
        opt.step()
        after = model.get_flat()
        np.testing.assert_allclose(after, before - 0.1 * grads, atol=1e-12)

    def test_momentum_accumulates(self, rng):
        model, opt, _ = self._grad_setup(rng, momentum=0.9)
        g = model.get_flat_grads().copy()
        p0 = model.get_flat()
        opt.step()
        p1 = model.get_flat()
        # First step identical to plain SGD (velocity starts at zero).
        np.testing.assert_allclose(p1, p0 - 0.1 * g, atol=1e-12)
        # Second step with the same gradients moves further.
        opt.step()
        p2 = model.get_flat()
        step2 = np.linalg.norm(p2 - p1)
        step1 = np.linalg.norm(p1 - p0)
        assert step2 > step1

    def test_weight_decay_shrinks_params(self, rng):
        model = MLP(4, (3,), 2, rng)
        opt = SGD(model, schedule=0.1, weight_decay=0.5)
        for grad in model.grads:
            grad[...] = 0.0
        before = np.abs(model.get_flat()).sum()
        opt.step()
        after = np.abs(model.get_flat()).sum()
        assert after < before

    def test_validation(self, rng):
        model = MLP(4, (3,), 2, rng)
        with pytest.raises(ValueError):
            SGD(model, 0.1, momentum=1.0)
        with pytest.raises(ValueError):
            SGD(model, 0.1, weight_decay=-0.1)

    def test_step_count_and_schedule(self, rng):
        model = MLP(4, (3,), 2, rng)
        opt = SGD(model, StepDecayLR(1.0, step_size=2, gamma=0.1))
        for grad in model.grads:
            grad[...] = 0.0
        assert opt.step() == 1.0
        assert opt.step() == 1.0
        assert opt.step() == pytest.approx(0.1)
