"""Defence forensics: audit records, manifests, detection math, CLI.

Pins the three contracts of :mod:`repro.obs.audit`:

* **read-only** — an audited run produces bit-identical model results,
  and the record stream itself is byte-identical for every worker count
  (in-process and across fresh interpreters);
* **schema** — every emitted record validates, invalid lines are counted
  (or fail under ``--strict``), manifests round-trip;
* **analysis** — detection precision/recall/FPR from
  :mod:`repro.obs.audit_report` match hand-computed confusion counts,
  and a run self-diff is exactly zero.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from repro.experiments.matrix import gradient_gap, run_defence_matrix
from repro.obs import audit
from repro.obs.audit_report import build_audit_report, diff_audit
from test_determinism_subprocess import _run_child

# ----------------------------------------------------------------------
# schema / emission
# ----------------------------------------------------------------------


def test_validate_record_accepts_each_kind():
    records = [
        {"kind": "decision", "step": 1, "rule": "krum", "n": 4,
         "evidence": {"scores": [1.0, 2.0]}, "rejected": [True, False],
         "members": [0, 1]},
        {"kind": "consensus", "step": 0, "protocol": "pbft", "n": 2,
         "accepted": [True, True], "silent": [False, False],
         "byzantine": [False, False], "equivocated": 0, "excluded": 0},
        {"kind": "ground_truth", "step": 0, "n": 3, "byzantine": [2],
         "silent": []},
        {"kind": "fault", "step": 2, "event": "crash", "device": 7},
        {"kind": "metric", "step": 0, "name": "gradient_gap", "value": 1.0},
    ]
    for record in records:
        audit.validate_record(record)


@pytest.mark.parametrize(
    "record",
    [
        {"kind": "nope", "step": 0},
        {"kind": "decision", "step": 0},  # missing required fields
        {"kind": "metric", "step": "zero", "name": "x", "value": 1.0},
        {"kind": "metric", "step": 0, "name": "x", "value": 1.0,
         "bogus": True},  # unknown field
        {"kind": "ground_truth", "step": 0, "n": 2,
         "byzantine": [True], "silent": []},  # bools, not ids
        {"kind": "decision", "step": 0, "rule": "r", "n": 2,
         "evidence": {}, "rejected": [1, 0]},  # ints, not bools
        {"kind": "decision", "step": 0, "rule": "r", "n": 2,
         "evidence": [], "rejected": [True, False]},  # evidence not dict
    ],
)
def test_validate_record_rejects(record):
    with pytest.raises(audit.AuditSchemaError):
        audit.validate_record(record)


def test_context_fields_and_step_precedence():
    au = audit.Auditor()
    with au.context(cell={"defence": "krum"}, members=None):
        au.record("metric", name="gap", value=1.0)
        with au.context(step=7):
            au.record("metric", name="gap", value=2.0)
            au.record("metric", step=9, name="gap", value=3.0)
    assert au.records[0]["cell"] == {"defence": "krum"}
    assert "members" not in au.records[0]  # None context fields dropped
    assert au.records[0]["step"] == 0  # default
    assert au.records[1]["step"] == 7  # ambient frame
    assert au.records[2]["step"] == 9  # explicit beats ambient


def test_records_are_json_safe_and_round_trip(tmp_path):
    au = audit.Auditor()
    au.record(
        "decision",
        rule="krum",
        n=3,
        evidence={"scores": np.array([1.5, np.nan, 2.0]), "f": np.int64(1)},
        rejected=[bool(b) for b in np.array([True, False, True])],
    )
    path = au.save(tmp_path / "audit.jsonl")
    records, skipped = audit.load_audit(path)
    assert skipped == []
    assert records == au.records
    assert records[0]["evidence"]["scores"] == [1.5, None, 2.0]


def test_load_audit_counts_invalid_lines_and_strict_raises(tmp_path):
    good = json.dumps(
        {"kind": "metric", "step": 0, "name": "gap", "value": 1.0}
    )
    path = tmp_path / "audit.jsonl"
    path.write_text(
        f"{good}\nnot json\n\n{json.dumps({'kind': 'nope'})}\n{good}\n",
        encoding="utf-8",
    )
    records, skipped = audit.load_audit(path)
    assert len(records) == 2
    assert [lineno for lineno, _ in skipped] == [2, 4]
    with pytest.raises(audit.AuditSchemaError, match="line 2"):
        audit.load_audit(path, strict=True)


def test_manifest_round_trip(tmp_path):
    manifest = audit.build_manifest(
        command="matrix",
        spec={"defences": ["krum"]},
        seed=7,
        registries={"aggregators": ["krum", "fedavg"]},
    )
    assert manifest["schema"] == audit.AUDIT_SCHEMA_VERSION
    assert manifest["package"]["name"] == "repro"
    path = audit.manifest_path_for(tmp_path / "audit.jsonl")
    assert path.name == "audit.manifest.json"
    audit.write_manifest(path, manifest)
    assert audit.load_manifest(path) == manifest
    newer = dict(manifest, schema=audit.AUDIT_SCHEMA_VERSION + 1)
    audit.write_manifest(path, newer)
    with pytest.raises(audit.AuditSchemaError, match="newer"):
        audit.load_manifest(path)


# ----------------------------------------------------------------------
# read-only / bit-identity
# ----------------------------------------------------------------------


def test_gradient_gap_bit_identical_with_auditing():
    kwargs = dict(n_total=7, dim=6, n_trials=2, consensus="pbft", seed=3)
    plain = gradient_gap("krum", "sign_flip", **kwargs)
    with audit.audited() as au:
        audited = gradient_gap("krum", "sign_flip", **kwargs)
    assert audited == plain  # exact float equality
    kinds = {r["kind"] for r in au.records}
    assert {"decision", "consensus", "ground_truth", "metric"} <= kinds
    for record in au.records:
        audit.validate_record(record)


def test_ground_truth_matches_injected_attackers():
    with audit.audited() as au:
        gradient_gap(
            "krum", "sign_flip", n_total=8, byzantine_fraction=0.25,
            dim=4, n_trials=2,
        )
    truths = [r for r in au.records if r["kind"] == "ground_truth"]
    assert len(truths) == 2
    # int(0.25 * 8) = 2 attackers, appended after the 6 honest rows.
    for truth in truths:
        assert truth["byzantine"] == [6, 7]
        assert truth["silent"] == []


@pytest.mark.slow
def test_audit_stream_worker_invariant_in_process():
    def jsonl(workers: int) -> str:
        with audit.scoped(audit.Auditor()) as au:
            run_defence_matrix(
                defences=("median", "krum"),
                attacks=("sign_flip",),
                n_trials=1,
                workers=workers,
            )
        assert au.records, "audited sweep recorded nothing"
        return au.to_jsonl()

    assert jsonl(1) == jsonl(2)


AUDIT_CHILD = """
import hashlib
from repro.experiments.matrix import run_defence_matrix
from repro.obs import audit

with audit.scoped(audit.Auditor()) as au:
    run_defence_matrix(
        defences=("median", "trimmed_mean", "krum"),
        attacks=("sign_flip", "scaling"),
        n_trials=2,
        n_total=8,
        dim=6,
    )
print(hashlib.sha256(au.to_jsonl().encode()).hexdigest())
"""


@pytest.mark.slow
def test_audit_stream_worker_invariant_subprocess():
    """REPRO_WORKERS=3 in a fresh interpreter must serialise byte-for-byte
    the same audit stream as the serial run."""
    assert _run_child(AUDIT_CHILD, workers=3) == _run_child(
        AUDIT_CHILD, workers=1
    )


# ----------------------------------------------------------------------
# detection analysis
# ----------------------------------------------------------------------
def _hand_records():
    cell = {"defence": "krum", "attack": "sign_flip"}
    return [
        {"kind": "ground_truth", "step": 0, "n": 4, "cell": cell,
         "byzantine": [2, 3], "silent": []},
        {"kind": "decision", "step": 0, "rule": "krum", "n": 4,
         "cell": cell, "evidence": {}, "members": [0, 1, 2, 3],
         "rejected": [False, False, True, False]},
        {"kind": "metric", "step": 0, "cell": cell,
         "name": "gradient_gap", "value": 1.25},
    ]


def test_detection_precision_recall_fpr_math():
    report = build_audit_report(_hand_records())
    [cell] = report.sorted_cells()
    # device 2 flagged (tp), device 3 kept (fn), 0/1 kept (tn).
    assert (cell.stats.tp, cell.stats.fp, cell.stats.fn, cell.stats.tn) == (
        1, 0, 1, 2,
    )
    assert cell.stats.precision == 1.0
    assert cell.stats.recall == 0.5
    assert cell.stats.fpr == 0.0
    assert cell.truth_byzantine == {2, 3}
    assert cell.metric_means() == {"gradient_gap": 1.25}
    assert cell.devices[2].flagged == 1 and cell.devices[2].byzantine


def test_silent_devices_not_scored():
    records = [
        {"kind": "ground_truth", "step": 0, "n": 3,
         "byzantine": [2], "silent": [1]},
        {"kind": "decision", "step": 0, "rule": "krum", "n": 3,
         "evidence": {}, "members": [0, 1, 2],
         "rejected": [False, True, True]},
    ]
    report = build_audit_report(records)
    [cell] = report.sorted_cells()
    # Device 1 is crash-silent: its rejection is neither tp nor fp.
    assert (cell.stats.tp, cell.stats.fp, cell.stats.fn, cell.stats.tn) == (
        1, 0, 0, 1,
    )


def test_diff_zero_on_self_and_nonzero_on_change():
    records = _hand_records()
    self_diff = diff_audit(records, records)
    assert self_diff.max_abs_delta == 0.0
    assert not self_diff.exceeds(0.0)

    changed = json.loads(json.dumps(records))
    changed[2]["value"] = 1.5
    diff = diff_audit(records, changed)
    [cell] = diff.cells
    assert cell.metrics["gradient_gap"] == pytest.approx(0.25)
    assert diff.exceeds(1e-9)

    other = json.loads(json.dumps(records))
    for record in other:
        record["cell"] = {"defence": "median", "attack": "sign_flip"}
    missing = diff_audit(records, other)
    assert missing.only_a and missing.only_b
    assert missing.exceeds(1e9)  # structural difference beats any tol


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _write_run(tmp_path, name, records):
    run_dir = tmp_path / name
    au = audit.Auditor()
    au.records.extend(records)
    path = au.save(run_dir / "audit.jsonl")
    audit.write_manifest(
        audit.manifest_path_for(path),
        audit.build_manifest(command="test", seed=0),
    )
    return run_dir


def test_cli_audit_report_and_self_diff(tmp_path, capsys):
    run_dir = _write_run(tmp_path, "runA", _hand_records())
    assert main(["audit", str(run_dir)]) == 0
    out = capsys.readouterr().out
    assert "Detection vs injected ground truth" in out
    assert "krum/sign_flip" in out
    assert "2,3" in out  # ground-truth attacker ids
    assert "manifest: schema 1" in out

    assert main(
        ["audit", "--diff", str(run_dir), str(run_dir), "--check"]
    ) == 0
    assert "max |delta| = 0.000e+00" in capsys.readouterr().out


def test_cli_audit_diff_check_fails_on_regression(tmp_path, capsys):
    run_a = _write_run(tmp_path, "runA", _hand_records())
    changed = json.loads(json.dumps(_hand_records()))
    changed[2]["value"] = 2.0
    run_b = _write_run(tmp_path, "runB", changed)
    assert main(
        ["audit", "--diff", str(run_a), str(run_b), "--check"]
    ) == 1
    assert "REGRESSION" in capsys.readouterr().out
    # Without --check the diff is informational only.
    assert main(["audit", "--diff", str(run_a), str(run_b)]) == 0


def test_cli_audit_missing_run(tmp_path, capsys):
    assert main(["audit", str(tmp_path / "nope")]) == 2
    assert "repro audit" in capsys.readouterr().err


def test_cli_report_lenient_counts_skipped_lines(tmp_path, capsys):
    event = json.dumps(
        {"name": "round", "cat": "trainer", "ph": "X", "t": 0.0, "dur": 1.0}
    )
    path = tmp_path / "trace.jsonl"
    path.write_text(f"{event}\nnot json\n", encoding="utf-8")
    assert main(["report", str(path)]) == 0
    captured = capsys.readouterr()
    assert "skipped 1 unrecognised line(s)" in captured.err
    assert main(["report", str(path), "--strict"]) == 2
    assert "invalid JSON" in capsys.readouterr().err


@pytest.mark.slow
def test_cli_audited_matrix_end_to_end(tmp_path, capsys):
    """--audit on a defence-matrix run writes records + manifest that the
    audit command consumes, and whose ground truth names the injected
    attacker set exactly."""
    jsonl = tmp_path / "run" / "audit.jsonl"
    assert main(
        [
            "--audit", str(jsonl),
            "matrix", "--n-total", "8", "--dim", "6", "--trials", "1",
        ]
    ) == 0
    capsys.readouterr()
    assert jsonl.is_file()
    manifest = audit.load_manifest(audit.manifest_path_for(jsonl))
    assert manifest["command"] == "matrix"
    records, skipped = audit.load_audit(jsonl, strict=True)
    assert skipped == []
    truth = [r for r in records if r["kind"] == "ground_truth"]
    assert truth and all(r["byzantine"] == [6, 7] for r in truth)
    assert main(["audit", str(jsonl), "--strict", "--no-timelines"]) == 0
    out = capsys.readouterr().out
    assert "Detection vs injected ground truth" in out
    assert main(["audit", "--diff", str(jsonl), str(jsonl), "--check"]) == 0


def test_scenario_persist_artifacts(tmp_path):
    from repro.scenario.runner import (
        ScenarioRunner,
        persist_result,
        run_manifest,
    )
    from repro.scenario.spec import matrix_spec

    spec = matrix_spec(
        name="persist-test",
        defences=("median",),
        attacks=("sign_flip",),
        fractions=(0.25,),
        n_total=6,
        dim=4,
        n_trials=1,
    )
    with audit.audited():
        result = ScenarioRunner().run(spec)
        paths = persist_result(
            result, tmp_path / "out", manifest=run_manifest(spec)
        )
    assert sorted(paths) == [
        "audit", "cells_csv", "cells_json", "manifest", "report",
    ]
    for path in paths.values():
        assert path.is_file()
    from repro.experiments.io import load_records_json

    [cell] = load_records_json(paths["cells_json"])
    assert cell["defence"] == "median" and cell["attack"] == "sign_flip"
    manifest = audit.load_manifest(paths["manifest"])
    assert manifest["spec"]["name"] == "persist-test"
    assert "krum" in manifest["registries"]["aggregators"]
    records, skipped = audit.load_audit(paths["audit"], strict=True)
    assert records and skipped == []
