"""Incremental kernel reuse and per-rule kernel planning.

The cross-round fast path (:func:`repro.aggregation.matrix.incremental_from`)
reuses last round's cached kernels for rows whose bits did not move.  The
contract is the same bit-equivalence the differential suite pins for the
rules themselves: an incrementally-updated :class:`ParameterMatrix` must
be indistinguishable — data, weights, and every cached kernel, byte for
byte — from a from-scratch build of the new stack.  These tests sweep
that contract across the single-block and block-pair Gram regimes
(``_GRAM_BLOCK = 128``), changed-row subsets, signed zeros, probe-tail
changes, membership churn, and every registered rule's output.

The second half pins the kernel *plans*: each rule declares in
``Aggregator.kernels`` exactly the cached kernels its ``_aggregate`` may
consume, so rules that never touch the pairwise geometry never pay the
Gram build.  Lazy caching makes the check direct — after running a rule
on a fresh matrix, any undeclared kernel slot must still be ``None``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.aggregation import (
    ParameterMatrix,
    available_aggregators,
    get_aggregator,
)
from repro.aggregation.matrix import KERNEL_NAMES, _changed_rows, incremental_from
from repro.aggregation.norms import _GRAM_BLOCK, gram_matrix, gram_update_rows

ALL_RULES = available_aggregators()

#: kernel name -> the ParameterMatrix cache slot it materialises
SLOT_OF = {
    "sq_norms": "_sq_norms",
    "norms": "_norms",
    "gram": "_gram",
    "pairwise_sq_dists": "_d2",
    "cosine": "_cos",
}

# Sizes straddling the canonical Gram block: single-gemm regime,
# exactly one block, and multi-block-pair assembly.
SIZES = [(6, 5), (10, 33), (_GRAM_BLOCK, 17), (150, 40), (300, 9)]


def perturb(base: np.ndarray, rows: np.ndarray, seed: int) -> np.ndarray:
    new = base.copy()
    rng = np.random.default_rng(seed)
    new[rows] += 0.3 * rng.standard_normal((len(rows), base.shape[1]))
    return new


def assert_matrices_bit_equal(inc: ParameterMatrix, fresh: ParameterMatrix) -> None:
    __tracebackhide__ = True
    assert inc.data.tobytes() == fresh.data.tobytes(), "data diverged"
    assert inc.weights.tobytes() == fresh.weights.tobytes(), "weights diverged"
    for name in KERNEL_NAMES:
        got = getattr(inc, name)
        want = getattr(fresh, name)
        assert got.tobytes() == want.tobytes(), f"kernel {name!r} diverged"


class TestIncrementalKernels:
    @pytest.mark.parametrize("n,d", SIZES)
    @pytest.mark.parametrize("frac", [0.1, 0.45])
    def test_kernels_bit_identical_to_fresh_build(self, n, d, frac):
        rng = np.random.default_rng(7 * n + d)
        base = rng.standard_normal((n, d))
        prev = ParameterMatrix(base.copy())
        prev.ensure(KERNEL_NAMES)
        k = max(1, int(frac * n))
        rows = rng.choice(n, size=k, replace=False)
        new = perturb(base, rows, seed=n + d)
        inc = incremental_from(prev, new)
        assert_matrices_bit_equal(inc, ParameterMatrix(new.copy()))

    @pytest.mark.parametrize("n,d", SIZES)
    def test_cold_prev_without_cached_kernels(self, n, d):
        """Reusing a matrix that never materialised its kernels is legal:
        the child simply computes them lazily, like a fresh build."""
        rng = np.random.default_rng(n + 3 * d)
        base = rng.standard_normal((n, d))
        prev = ParameterMatrix(base.copy())  # no ensure(): caches empty
        new = perturb(base, np.array([0, n - 1]), seed=d)
        inc = incremental_from(prev, new)
        assert_matrices_bit_equal(inc, ParameterMatrix(new.copy()))

    @pytest.mark.parametrize("n", [64, 200, 300])
    def test_gram_update_rows_matches_full_assembly(self, n):
        rng = np.random.default_rng(n)
        a = rng.standard_normal((n, 21))
        b = a.copy()
        rows = np.array([0, n // 2, n - 1])
        b[rows] = rng.standard_normal((3, 21))
        patched = gram_update_rows(gram_matrix(a), b, rows)
        assert patched.tobytes() == gram_matrix(b).tobytes()

    def test_zero_changed_rows_shares_kernel_objects(self):
        rng = np.random.default_rng(0)
        base = rng.standard_normal((9, 12))
        prev = ParameterMatrix(base.copy())
        prev.ensure(KERNEL_NAMES)
        inc = incremental_from(prev, base.copy())
        assert inc.data is prev.data
        for slot in SLOT_OF.values():
            assert getattr(inc, slot) is getattr(prev, slot)

    def test_signed_zero_counts_as_changed(self):
        base = np.zeros((4, 8))
        prev = ParameterMatrix(base.copy())
        prev.ensure(KERNEL_NAMES)
        new = base.copy()
        new[2, 5] = -0.0  # equal under ==, different bit pattern
        assert list(_changed_rows(prev.data, new)) == [2]
        assert_matrices_bit_equal(
            incremental_from(prev, new), ParameterMatrix(new.copy())
        )

    def test_change_past_probe_columns_detected(self):
        """A row identical through the 16-column probe but differing in
        its tail must still be treated as changed."""
        rng = np.random.default_rng(1)
        base = rng.standard_normal((5, 40))
        prev = ParameterMatrix(base.copy())
        prev.ensure(KERNEL_NAMES)
        new = base.copy()
        new[3, 39] += 1.0
        assert list(_changed_rows(prev.data, new)) == [3]
        assert_matrices_bit_equal(
            incremental_from(prev, new), ParameterMatrix(new.copy())
        )

    def test_membership_churn_falls_back_to_full_build(self):
        rng = np.random.default_rng(2)
        prev = ParameterMatrix(rng.standard_normal((8, 10)))
        prev.ensure(KERNEL_NAMES)
        grown = rng.standard_normal((9, 10))  # one device joined
        inc = incremental_from(prev, grown)
        assert_matrices_bit_equal(inc, ParameterMatrix(grown.copy()))

    def test_too_many_changed_rows_rebuilds(self):
        rng = np.random.default_rng(3)
        base = rng.standard_normal((10, 6))
        prev = ParameterMatrix(base.copy())
        prev.ensure(KERNEL_NAMES)
        new = perturb(base, np.arange(8), seed=4)  # 80% > default 50%
        inc = incremental_from(prev, new)
        # A full rebuild starts cold: no kernel may be pre-materialised.
        for slot in SLOT_OF.values():
            assert getattr(inc, slot) is None
        assert_matrices_bit_equal(inc, ParameterMatrix(new.copy()))

    def test_raw_weights_normalised_exactly_once(self):
        """The incremental path must hand *raw* weights to one single
        normalisation, like the constructor — re-normalising an
        already-normalised vector shifts bits."""
        rng = np.random.default_rng(5)
        base = rng.standard_normal((7, 9))
        raw = rng.uniform(0.5, 3.0, size=7)  # deliberately not summing to 1
        prev = ParameterMatrix(base.copy(), raw.copy())
        prev.ensure(KERNEL_NAMES)
        new = perturb(base, np.array([1, 4]), seed=6)
        inc = incremental_from(prev, new, weights=raw.copy())
        fresh = ParameterMatrix(new.copy(), raw.copy())
        assert inc.weights.tobytes() == fresh.weights.tobytes()
        # ...and with weights omitted, both sides mean uniform.
        inc_u = incremental_from(prev, new)
        assert inc_u.weights.tobytes() == ParameterMatrix(new.copy()).weights.tobytes()

    def test_non_finite_replacement_rows_rejected(self):
        rng = np.random.default_rng(8)
        base = rng.standard_normal((6, 5))
        prev = ParameterMatrix(base.copy())
        bad = base.copy()
        bad[2, 2] = np.nan
        with pytest.raises(ValueError, match="NaN or Inf"):
            incremental_from(prev, bad)


class TestRulesOnIncrementalMatrices:
    @pytest.mark.parametrize("rule", ALL_RULES)
    @pytest.mark.parametrize("n,d", [(12, 33), (150, 24)])
    def test_rule_output_bitwise_equal(self, rule, n, d):
        rng = np.random.default_rng(11 * n + d)
        base = rng.standard_normal((n, d))
        prev = ParameterMatrix(base.copy())
        prev.ensure(KERNEL_NAMES)
        rows = rng.choice(n, size=max(1, n // 4), replace=False)
        new = perturb(base, rows, seed=n)
        out_inc = get_aggregator(rule)(incremental_from(prev, new))
        out_fresh = get_aggregator(rule)(ParameterMatrix(new.copy()))
        assert np.array_equal(out_inc, out_fresh), (
            f"{rule}: output diverged on incrementally-updated matrix"
        )


class TestKernelPlans:
    @pytest.mark.parametrize("rule", ALL_RULES)
    def test_plan_warms_exactly_declared_kernels(self, rule):
        agg = get_aggregator(rule)
        rng = np.random.default_rng(13)
        matrix = ParameterMatrix(rng.standard_normal((10, 8)))
        agg.plan(matrix)
        built = {
            name
            for name, slot in SLOT_OF.items()
            if getattr(matrix, slot) is not None
        }
        # Declared plans include their closure (cosine implies gram and
        # norms), so pre-warming materialises the declared set exactly.
        assert built == set(agg.kernels)

    @pytest.mark.parametrize("rule", ALL_RULES)
    def test_aggregate_touches_only_declared_kernels(self, rule):
        agg = get_aggregator(rule)
        rng = np.random.default_rng(17)
        matrix = ParameterMatrix(rng.standard_normal((10, 8)))
        agg(matrix)
        for name, slot in SLOT_OF.items():
            if name not in agg.kernels:
                assert getattr(matrix, slot) is None, (
                    f"{rule} built undeclared kernel {name!r} — extend its "
                    f"kernels declaration or drop the access"
                )

    def test_ensure_rejects_unknown_kernel_names(self):
        matrix = ParameterMatrix(np.eye(3))
        with pytest.raises(ValueError, match="unknown kernel"):
            matrix.ensure(frozenset({"hessian"}))

    def test_column_reduction_rules_declare_empty_plans(self):
        """The rules that motivated planning — pure column reductions and
        center-iteration rules — must keep declaring no pairwise kernels,
        or the cold-path regression this PR fixes comes back silently."""
        for rule in ("fedavg", "median", "trimmed_mean"):
            if rule in ALL_RULES:
                assert get_aggregator(rule).kernels == frozenset()
