"""ABD-HFL over arbitrary-cluster-size (ACSM) hierarchies.

The paper's Appendix C extends the analysis to unequal cluster sizes;
the trainer must run unmodified on such structures, with data-size
weighted aggregation handling the imbalance.
"""

import numpy as np

from repro.core.config import ABDHFLConfig, LevelAggregation, TrainingConfig
from repro.core.trainer import ABDHFLTrainer
from repro.data.partition import iid_partition
from repro.data.poisoning import poison_type1
from repro.data.synthetic_mnist import SyntheticMNIST, make_synthetic_mnist
from repro.nn.model import MLP
from repro.pipeline.event_run import EventDrivenRun, TimingConfig
from repro.sim.latency import FixedLatency
from repro.topology.tree import build_acsm
from repro.utils.seeding import SeedSequenceFactory


def acsm_setup(seed=0, poison_ids=()):
    """Unbalanced 3-level structure: bottom clusters of sizes 2..5."""
    # top: 2 nodes; level 1: clusters [3, 2] (5 members = 5 bottom clusters)
    sizes = [[3, 2], [2, 4, 3, 5, 2]]
    hierarchy = build_acsm(sizes)
    n_clients = len(hierarchy.bottom_clients())
    seeds = SeedSequenceFactory(seed)
    gen = SyntheticMNIST(side=8, noise_sigma=0.15)
    train, test = make_synthetic_mnist(n_clients * 80, 300, seeds.generator("d"), gen)
    part = iid_partition(train, n_clients, seeds.generator("p"))
    datasets = {}
    for cid, shard in enumerate(part.shards):
        if cid in poison_ids:
            datasets[cid] = poison_type1(shard)
            hierarchy.nodes[cid].byzantine = True
        else:
            datasets[cid] = shard
    model = MLP(64, (16,), 10, seeds.generator("i"))
    return hierarchy, datasets, model, test


CONFIG = ABDHFLConfig(
    training=TrainingConfig(local_iterations=8, batch_size=16, learning_rate=0.8),
    default_intermediate=LevelAggregation("bra", "multikrum"),
    default_top=LevelAggregation("cba", "voting"),
)


class TestACSMTrainer:
    def test_structure_is_valid(self):
        hierarchy, *_ = acsm_setup()
        assert hierarchy.n_levels == 3
        sizes = sorted(c.size for c in hierarchy.clusters_at(2))
        assert sizes == [2, 2, 3, 4, 5]
        assert len(hierarchy.bottom_clients()) == 16

    def test_trains(self):
        hierarchy, datasets, model, test = acsm_setup(seed=1)
        trainer = ABDHFLTrainer(hierarchy, datasets, model, CONFIG, test, seed=1)
        trainer.run(15)
        assert trainer.history[-1].test_accuracy > 0.45

    def test_filters_poison_in_unequal_clusters(self):
        # one poisoner inside the size-5 cluster and one in the size-4
        hierarchy, datasets, model, test = acsm_setup(seed=2, poison_ids=(3, 10))
        trainer = ABDHFLTrainer(
            hierarchy, datasets, model, CONFIG, test, seed=2, top_byzantine_votes=0
        )
        trainer.run(15)
        assert trainer.history[-1].test_accuracy > 0.45

    def test_event_driven_run_on_acsm(self):
        hierarchy, *_ = acsm_setup()
        run = EventDrivenRun(
            hierarchy,
            TimingConfig(
                local_compute=FixedLatency(5.0),
                partial_aggregate=FixedLatency(1.0),
                global_aggregate=FixedLatency(10.0),
                link=FixedLatency(0.1),
            ),
            flag_level=1,
            seed=3,
        )
        timings = run.run(3)
        finished = [t for t in timings if np.isfinite(t.global_arrival)]
        assert len(finished) == 3 * 5  # 5 bottom clusters x 3 rounds
