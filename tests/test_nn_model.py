"""Tests for Sequential/MLP models and flat-parameter plumbing."""

import numpy as np
import pytest

from repro.nn.layers import Linear, ReLU
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.model import MLP, Sequential
from repro.nn.optim import SGD


class TestSequential:
    def test_requires_layers(self):
        with pytest.raises(ValueError):
            Sequential([])

    def test_forward_shape(self, rng):
        model = MLP(8, (4,), 3, rng)
        out = model.forward(rng.standard_normal((5, 8)))
        assert out.shape == (5, 3)

    def test_predict_argmax(self, rng):
        model = MLP(8, (4,), 3, rng)
        x = rng.standard_normal((6, 8))
        np.testing.assert_array_equal(
            model.predict(x), np.argmax(model.forward(x, train=False), axis=-1)
        )

    def test_flat_round_trip(self, rng):
        model = MLP(8, (4,), 3, rng)
        flat = model.get_flat()
        assert flat.shape == (model.n_params,)
        model2 = MLP(8, (4,), 3, np.random.default_rng(999))
        model2.set_flat(flat)
        np.testing.assert_array_equal(model2.get_flat(), flat)

    def test_set_flat_changes_forward(self, rng):
        model = MLP(8, (4,), 3, rng)
        x = rng.standard_normal((2, 8))
        before = model.forward(x, train=False).copy()
        model.set_flat(np.zeros(model.n_params))
        after = model.forward(x, train=False)
        assert not np.allclose(before, after)
        np.testing.assert_allclose(after, 0.0)

    def test_set_flat_wrong_size(self, rng):
        model = MLP(8, (4,), 3, rng)
        with pytest.raises(ValueError):
            model.set_flat(np.zeros(model.n_params + 1))

    def test_clone_independent(self, rng):
        model = MLP(8, (4,), 3, rng)
        clone = model.clone()
        np.testing.assert_array_equal(model.get_flat(), clone.get_flat())
        clone.set_flat(np.zeros(clone.n_params))
        assert not np.allclose(model.get_flat(), 0.0)

    def test_n_params_matches_architecture(self, rng):
        model = MLP(10, (7,), 4, rng)
        expected = 10 * 7 + 7 + 7 * 4 + 4
        assert model.n_params == expected


class TestTrainingConvergence:
    def test_learns_linearly_separable(self, rng):
        """End-to-end sanity: MLP + SGD fits a separable 2-class problem."""
        n = 200
        X = rng.standard_normal((n, 5))
        w_true = rng.standard_normal(5)
        y = (X @ w_true > 0).astype(np.int64)
        model = Sequential([Linear(5, 8, rng), ReLU(), Linear(8, 2, rng)])
        loss_fn = SoftmaxCrossEntropy()
        opt = SGD(model, 0.5)
        for _ in range(150):
            logits = model.forward(X, train=True)
            loss_fn.forward(logits, y)
            model.backward(loss_fn.backward())
            opt.step()
        acc = float(np.mean(model.predict(X) == y))
        assert acc > 0.95

    def test_loss_decreases(self, rng):
        X = rng.standard_normal((64, 6))
        y = rng.integers(0, 3, size=64)
        model = MLP(6, (8,), 3, rng)
        loss_fn = SoftmaxCrossEntropy()
        opt = SGD(model, 0.3)
        first = None
        last = None
        for step in range(60):
            logits = model.forward(X, train=True)
            value = loss_fn.forward(logits, y)
            if step == 0:
                first = value
            last = value
            model.backward(loss_fn.backward())
            opt.step()
        assert last < first
