"""Tests for IID / non-IID / Dirichlet partitioners."""

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.partition import dirichlet_partition, iid_partition, noniid_label_shards


def balanced_dataset(n=400, n_classes=10, d=5, seed=0):
    rng = np.random.default_rng(seed)
    y = np.tile(np.arange(n_classes), n // n_classes)
    return Dataset(rng.standard_normal((n, d)), y, n_classes)


class TestIID:
    def test_sizes_near_equal(self, rng):
        result = iid_partition(balanced_dataset(), 7, rng)
        sizes = result.sizes()
        assert sizes.sum() == 400
        assert sizes.max() - sizes.min() <= 1

    def test_disjoint_cover(self, rng):
        ds = balanced_dataset(100)
        ds.X[:, 0] = np.arange(100)
        result = iid_partition(ds, 4, rng)
        markers = sorted(
            float(x) for shard in result.shards for x in shard.X[:, 0]
        )
        assert markers == [float(i) for i in range(100)]

    def test_each_client_sees_most_labels(self, rng):
        result = iid_partition(balanced_dataset(1000), 10, rng)
        for labels in result.labels_per_client:
            assert len(labels) >= 8  # IID: nearly all classes present

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            iid_partition(balanced_dataset(10), 0, rng)
        with pytest.raises(ValueError):
            iid_partition(balanced_dataset(10), 11, rng)


class TestNonIID:
    def test_two_labels_per_client(self, rng):
        result = noniid_label_shards(balanced_dataset(), 8, rng)
        for shard, labels in zip(result.shards, result.labels_per_client):
            assert len(labels) == 2
            assert set(np.unique(shard.y)) <= set(labels)

    def test_equal_shard_sizes(self, rng):
        result = noniid_label_shards(balanced_dataset(400), 8, rng)
        sizes = result.sizes()
        assert sizes.max() - sizes.min() <= 0  # 400/8 exact

    def test_honest_cover_all_labels(self, rng):
        """The paper's special design: honest clients jointly cover all 10."""
        honest = [0, 2, 4, 6, 8, 10, 12, 14]
        result = noniid_label_shards(
            balanced_dataset(800), 16, rng, honest_clients=honest
        )
        assert result.covered_labels(honest) == set(range(10))

    def test_honest_cover_property_many_seeds(self):
        honest = list(range(5))  # 5 honest x 2 labels = 10 = all classes
        for seed in range(10):
            rng = np.random.default_rng(seed)
            result = noniid_label_shards(
                balanced_dataset(600), 12, rng, honest_clients=honest
            )
            assert result.covered_labels(honest) == set(range(10)), seed

    def test_too_few_honest_rejected(self, rng):
        with pytest.raises(ValueError):
            noniid_label_shards(
                balanced_dataset(), 8, rng, honest_clients=[0, 1, 2, 3]
            )  # 4 x 2 = 8 < 10

    def test_out_of_range_honest(self, rng):
        with pytest.raises(ValueError):
            noniid_label_shards(balanced_dataset(), 4, rng, honest_clients=[99])

    def test_labels_per_client_validation(self, rng):
        with pytest.raises(ValueError):
            noniid_label_shards(balanced_dataset(), 4, rng, labels_per_client=0)
        with pytest.raises(ValueError):
            noniid_label_shards(balanced_dataset(), 4, rng, labels_per_client=11)


class TestDirichlet:
    def test_cover_all_samples(self, rng):
        result = dirichlet_partition(balanced_dataset(300), 6, rng, alpha=0.5)
        assert result.sizes().sum() == 300

    def test_small_alpha_is_skewed(self):
        rng = np.random.default_rng(0)
        result = dirichlet_partition(balanced_dataset(1000), 10, rng, alpha=0.05)
        label_spread = [len(labels) for labels in result.labels_per_client]
        # strong skew: typical client sees few classes
        assert float(np.mean(label_spread)) < 6

    def test_invalid_alpha(self, rng):
        with pytest.raises(ValueError):
            dirichlet_partition(balanced_dataset(), 4, rng, alpha=0.0)
