"""Tests for the event queue and simulator engine."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.events import EventQueue


class TestEventQueue:
    def test_fifo_for_equal_times(self):
        q = EventQueue()
        order = []
        q.push(1.0, lambda: order.append("a"))
        q.push(1.0, lambda: order.append("b"))
        q.pop().callback()
        q.pop().callback()
        assert order == ["a", "b"]

    def test_time_ordering(self):
        q = EventQueue()
        q.push(5.0, lambda: None)
        e = q.push(1.0, lambda: None)
        assert q.pop() is e

    def test_cancellation(self):
        q = EventQueue()
        e1 = q.push(1.0, lambda: None)
        e2 = q.push(2.0, lambda: None)
        e1.cancel()
        assert q.pop() is e2
        assert len(q) == 0

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, lambda: None)

    def test_pop_empty(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_peek_skips_cancelled(self):
        q = EventQueue()
        e = q.push(1.0, lambda: None)
        q.push(3.0, lambda: None)
        e.cancel()
        assert q.peek_time() == 3.0

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q
        q.push(1.0, lambda: None)
        assert q and len(q) == 1


class TestSimulator:
    def test_clock_advances(self):
        sim = Simulator()
        times = []
        sim.schedule(2.0, lambda: times.append(sim.now))
        sim.schedule(1.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [1.0, 2.0]
        assert sim.now == 2.0

    def test_nested_scheduling(self):
        sim = Simulator()
        fired = []

        def first():
            fired.append(("first", sim.now))
            sim.schedule(5.0, lambda: fired.append(("second", sim.now)))

        sim.schedule(1.0, first)
        sim.run()
        assert fired == [("first", 1.0), ("second", 6.0)]

    def test_run_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0  # clock advanced to the horizon
        sim.run()
        assert fired == [1, 10]

    def test_max_events(self):
        sim = Simulator()
        for t in range(5):
            sim.schedule(float(t + 1), lambda: None)
        sim.run(max_events=3)
        assert sim.events_processed == 3

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, lambda: None)

    def test_determinism(self):
        def run_once():
            sim = Simulator()
            log = []
            for i, t in enumerate([3.0, 1.0, 2.0, 1.0]):
                sim.schedule(t, lambda i=i: log.append(i))
            sim.run()
            return log

        assert run_once() == run_once()


class TestSimulatorEdgeCases:
    def test_same_timestamp_fifo_across_apis(self):
        """Insertion order breaks time ties — including schedule vs
        schedule_at vs nested scheduling at the same instant."""
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append("delay"))
        sim.schedule_at(2.0, lambda: order.append("absolute"))
        sim.schedule(
            1.0, lambda: sim.schedule(1.0, lambda: order.append("nested"))
        )
        sim.run()
        assert order == ["delay", "absolute", "nested"]

    def test_until_and_max_events_interact(self):
        """Both bounds apply; whichever bites first stops the run."""
        sim = Simulator()
        fired = []
        for t in range(1, 7):
            sim.schedule(float(t), lambda t=t: fired.append(t))

        sim.run(until=4.0, max_events=2)  # max_events bites first
        assert fired == [1, 2]
        assert sim.now == 2.0  # horizon not forced while events remain

        sim.run(until=4.0, max_events=10)  # until bites first
        assert fired == [1, 2, 3, 4]
        assert sim.now == 4.0

        sim.run()
        assert fired == [1, 2, 3, 4, 5, 6]

    def test_until_advances_clock_on_empty_queue(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == 7.0
        sim.run(until=3.0)  # an earlier horizon never rewinds the clock
        assert sim.now == 7.0

    def test_max_events_counts_only_this_call(self):
        sim = Simulator()
        for t in range(4):
            sim.schedule(float(t + 1), lambda: None)
        sim.run(max_events=2)
        sim.run(max_events=2)
        assert sim.events_processed == 4

    def test_schedule_at_now_is_allowed(self):
        """The causality guard is strict-past only: now itself is legal."""
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: sim.schedule_at(5.0, lambda: fired.append(1)))
        sim.run()
        assert fired == [1]
        assert sim.now == 5.0

    def test_schedule_at_past_rejected_after_until(self):
        """run(until=...) advances the clock, so earlier absolute times
        become the past even with no event processed."""
        sim = Simulator()
        sim.run(until=10.0)
        with pytest.raises(ValueError):
            sim.schedule_at(9.999, lambda: None)

    def test_zero_delay_event_fires_at_now(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: sim.schedule(0.0, lambda: fired.append(sim.now)))
        sim.run()
        assert fired == [1.0]

    def test_cancelled_events_not_counted(self):
        sim = Simulator()
        keep = sim.schedule(1.0, lambda: None)
        drop = sim.schedule(2.0, lambda: None)
        drop.cancel()
        sim.run()
        assert sim.events_processed == 1
        assert keep.time == 1.0
