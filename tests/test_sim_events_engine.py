"""Tests for the event queue and simulator engine."""

import heapq

import pytest

from repro.check import sanitize
from repro.sim.engine import Simulator
from repro.sim.events import Event, EventQueue, TieBreakError


class TestEventQueue:
    def test_fifo_for_equal_times(self):
        q = EventQueue()
        order = []
        q.push(1.0, lambda: order.append("a"))
        q.push(1.0, lambda: order.append("b"))
        q.pop().callback()
        q.pop().callback()
        assert order == ["a", "b"]

    def test_time_ordering(self):
        q = EventQueue()
        q.push(5.0, lambda: None)
        e = q.push(1.0, lambda: None)
        assert q.pop() is e

    def test_cancellation(self):
        q = EventQueue()
        e1 = q.push(1.0, lambda: None)
        e2 = q.push(2.0, lambda: None)
        e1.cancel()
        assert q.pop() is e2
        assert len(q) == 0

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, lambda: None)

    def test_pop_empty(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_peek_skips_cancelled(self):
        q = EventQueue()
        e = q.push(1.0, lambda: None)
        q.push(3.0, lambda: None)
        e.cancel()
        assert q.peek_time() == 3.0

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q
        q.push(1.0, lambda: None)
        assert q and len(q) == 1


class TestSimulator:
    def test_clock_advances(self):
        sim = Simulator()
        times = []
        sim.schedule(2.0, lambda: times.append(sim.now))
        sim.schedule(1.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [1.0, 2.0]
        assert sim.now == 2.0

    def test_nested_scheduling(self):
        sim = Simulator()
        fired = []

        def first():
            fired.append(("first", sim.now))
            sim.schedule(5.0, lambda: fired.append(("second", sim.now)))

        sim.schedule(1.0, first)
        sim.run()
        assert fired == [("first", 1.0), ("second", 6.0)]

    def test_run_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0  # clock advanced to the horizon
        sim.run()
        assert fired == [1, 10]

    def test_max_events(self):
        sim = Simulator()
        for t in range(5):
            sim.schedule(float(t + 1), lambda: None)
        sim.run(max_events=3)
        assert sim.events_processed == 3

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, lambda: None)

    def test_determinism(self):
        def run_once():
            sim = Simulator()
            log = []
            for i, t in enumerate([3.0, 1.0, 2.0, 1.0]):
                sim.schedule(t, lambda i=i: log.append(i))
            sim.run()
            return log

        assert run_once() == run_once()


class TestSimulatorEdgeCases:
    def test_same_timestamp_fifo_across_apis(self):
        """Insertion order breaks time ties — including schedule vs
        schedule_at vs nested scheduling at the same instant."""
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append("delay"))
        sim.schedule_at(2.0, lambda: order.append("absolute"))
        sim.schedule(
            1.0, lambda: sim.schedule(1.0, lambda: order.append("nested"))
        )
        sim.run()
        assert order == ["delay", "absolute", "nested"]

    def test_until_and_max_events_interact(self):
        """Both bounds apply; whichever bites first stops the run."""
        sim = Simulator()
        fired = []
        for t in range(1, 7):
            sim.schedule(float(t), lambda t=t: fired.append(t))

        sim.run(until=4.0, max_events=2)  # max_events bites first
        assert fired == [1, 2]
        assert sim.now == 2.0  # horizon not forced while events remain

        sim.run(until=4.0, max_events=10)  # until bites first
        assert fired == [1, 2, 3, 4]
        assert sim.now == 4.0

        sim.run()
        assert fired == [1, 2, 3, 4, 5, 6]

    def test_until_advances_clock_on_empty_queue(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == 7.0
        sim.run(until=3.0)  # an earlier horizon never rewinds the clock
        assert sim.now == 7.0

    def test_max_events_counts_only_this_call(self):
        sim = Simulator()
        for t in range(4):
            sim.schedule(float(t + 1), lambda: None)
        sim.run(max_events=2)
        sim.run(max_events=2)
        assert sim.events_processed == 4

    def test_schedule_at_now_is_allowed(self):
        """The causality guard is strict-past only: now itself is legal."""
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: sim.schedule_at(5.0, lambda: fired.append(1)))
        sim.run()
        assert fired == [1]
        assert sim.now == 5.0

    def test_schedule_at_past_rejected_after_until(self):
        """run(until=...) advances the clock, so earlier absolute times
        become the past even with no event processed."""
        sim = Simulator()
        sim.run(until=10.0)
        with pytest.raises(ValueError):
            sim.schedule_at(9.999, lambda: None)

    def test_zero_delay_event_fires_at_now(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: sim.schedule(0.0, lambda: fired.append(sim.now)))
        sim.run()
        assert fired == [1.0]

    def test_cancelled_events_not_counted(self):
        sim = Simulator()
        keep = sim.schedule(1.0, lambda: None)
        drop = sim.schedule(2.0, lambda: None)
        drop.cancel()
        sim.run()
        assert sim.events_processed == 1
        assert keep.time == 1.0


class TestTieDetector:
    def test_normal_ties_pop_in_sequence_order(self):
        q = EventQueue()
        q.push(1.0, lambda: None)
        q.push(1.0, lambda: None)
        q.push(1.0, lambda: None)
        sequences = [q.pop().sequence for _ in range(3)]
        assert sequences == sorted(sequences)
        assert q.ties_observed == 2

    def test_tie_log_recorded_while_checks_enabled(self):
        q = EventQueue()
        q.push(2.0, lambda: None)
        q.push(2.0, lambda: None)
        q.pop(), q.pop()
        assert q.tie_log == [(2.0, 0, 1)]

    def test_tie_log_off_when_checks_disabled(self):
        with sanitize.sanitized(False):
            q = EventQueue()
            q.push(2.0, lambda: None)
            q.push(2.0, lambda: None)
            q.pop(), q.pop()
        assert q.tie_log == []
        assert q.ties_observed == 1  # the counter itself is always on

    def test_catches_insertion_order_dependent_schedule(self):
        """A queue regressing to insertion-identity tie-breaking fails
        loudly.  Simulated by pushing events with *decreasing* sequence
        numbers straight onto the heap — exactly what a heap that lost
        its sequence key degenerates into."""
        q = EventQueue()
        heapq.heappush(q._heap, Event(time=1.0, sequence=5, callback=lambda: None))
        heapq.heappush(q._heap, Event(time=1.0, sequence=5, callback=lambda: None))
        q.pop()
        with pytest.raises(TieBreakError, match="tie-break"):
            q.pop()

    def test_different_times_never_flagged(self):
        q = EventQueue()
        for t in (3.0, 1.0, 2.0):
            q.push(t, lambda: None)
        times = [q.pop().time for _ in range(3)]
        assert times == [1.0, 2.0, 3.0]
        assert q.ties_observed == 0

    def test_cancelled_events_do_not_enter_tie_state(self):
        q = EventQueue()
        dropped = q.push(1.0, lambda: None)
        q.push(1.0, lambda: None)
        dropped.cancel()
        q.pop()
        assert q.ties_observed == 0


class TestRunStepUnification:
    def test_run_counts_via_step(self):
        """run() and step() share one code path; interleaving them can
        never make events_processed drift."""
        sim = Simulator()
        for t in range(6):
            sim.schedule(float(t + 1), lambda: None)
        sim.run(max_events=2)
        assert sim.events_processed == 2
        assert sim.step()
        assert sim.events_processed == 3
        sim.run(max_events=1)
        assert sim.events_processed == 4
        sim.run()
        assert sim.events_processed == 6
        assert not sim.step()  # empty queue: no increment
        assert sim.events_processed == 6

    def test_run_until_empty_queue_advances_clock_only(self):
        sim = Simulator()
        sim.run(until=4.5)
        assert sim.now == 4.5
        assert sim.events_processed == 0

    def test_run_until_with_only_later_events_advances_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule(9.0, lambda: fired.append(9))
        sim.run(until=4.0)
        assert fired == []
        assert sim.now == 4.0
        sim.run()
        assert fired == [9]
        assert sim.now == 9.0

    def test_max_events_stop_leaves_clock_at_last_event(self):
        sim = Simulator()
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda: None)
        sim.run(until=10.0, max_events=2)
        assert sim.now == 2.0  # horizon not applied: work remains

    def test_step_respects_causality_with_run(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: seen.append(sim.now))
        sim.run(until=5.0)  # processes the event, then now = 5.0
        sim.schedule(0.0, lambda: seen.append(sim.now))
        assert sim.step()
        assert seen == [1.0, 5.0]
