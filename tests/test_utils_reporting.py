"""Tests for :mod:`repro.utils.reporting` (benchmark report emission)."""

from pathlib import Path

import pytest

from repro.utils.reporting import emit_report, results_dir


@pytest.fixture(autouse=True)
def _results_in_tmp(tmp_path, monkeypatch):
    """Point REPRO_RESULTS_DIR at a scratch directory for every test."""
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "results"))
    return tmp_path / "results"


class TestResultsDir:
    def test_env_override_and_creation_on_demand(self, _results_in_tmp):
        assert not _results_in_tmp.exists()
        assert results_dir() == _results_in_tmp
        assert _results_in_tmp.is_dir()

    def test_nested_path_parents_created(self, tmp_path, monkeypatch):
        target = tmp_path / "a" / "b" / "c"
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(target))
        assert results_dir() == target
        assert target.is_dir()

    def test_default_is_benchmarks_results(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_RESULTS_DIR", raising=False)
        monkeypatch.chdir(tmp_path)
        assert results_dir() == Path("benchmarks/results")
        assert (tmp_path / "benchmarks" / "results").is_dir()


class TestEmitReport:
    def test_prints_and_persists(self, _results_in_tmp, capsys):
        path = emit_report("table5", "| a | b |")
        assert path == _results_in_tmp / "table5.txt"
        assert path.read_text() == "| a | b |\n"
        assert "| a | b |" in capsys.readouterr().out

    def test_overwrites_previous_report(self, _results_in_tmp):
        emit_report("r", "first")
        path = emit_report("r", "second")
        assert path.read_text() == "second\n"

    @pytest.mark.parametrize("name", ["", "a/b", "a\\b"])
    def test_invalid_names_rejected(self, name):
        with pytest.raises(ValueError, match="invalid report name"):
            emit_report(name, "text")
