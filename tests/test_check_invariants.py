"""Quorum arithmetic helpers and the consensus-result structural checker."""

from __future__ import annotations

import numpy as np
import pytest

from repro.check.invariants import (
    InvariantViolation,
    check_consensus_result,
    fault_bound_holds,
    max_faulty,
    quorum_size,
    require_fault_bound,
)
from repro.consensus.base import ConsensusResult, CostModel


class TestArithmetic:
    @pytest.mark.parametrize(
        ("n", "f"), [(1, 0), (3, 0), (4, 1), (6, 1), (7, 2), (9, 2), (10, 3)]
    )
    def test_max_faulty_values(self, n, f):
        assert max_faulty(n) == f

    def test_max_faulty_matches_bound_exactly(self):
        # f is tolerable iff 3f < n — for every n, max_faulty is the
        # largest such f and max_faulty + 1 breaks the bound.
        for n in range(1, 60):
            f = max_faulty(n)
            assert 3 * f < n
            assert 3 * (f + 1) >= n
            assert fault_bound_holds(n, f)
            assert not fault_bound_holds(n, f + 1)

    def test_max_faulty_rejects_empty_group(self):
        with pytest.raises(InvariantViolation):
            max_faulty(0)

    @pytest.mark.parametrize(("f", "q"), [(0, 1), (1, 3), (2, 5), (5, 11)])
    def test_quorum_size(self, f, q):
        assert quorum_size(f) == q

    def test_quorum_rejects_negative(self):
        with pytest.raises(InvariantViolation):
            quorum_size(-1)

    def test_violation_is_value_error(self):
        # Pre-existing callers catch ValueError for bound violations.
        assert issubclass(InvariantViolation, ValueError)


class TestRequireFaultBound:
    def test_within_bound_passes(self):
        require_fault_bound(4, 1)
        require_fault_bound(7, 2, protocol="PBFT")

    def test_violation_raises_with_protocol_name(self):
        with pytest.raises(InvariantViolation, match="PBFT"):
            require_fault_bound(3, 1, protocol="PBFT")

    def test_singleton_exempt_by_default(self):
        require_fault_bound(1, 1)

    def test_singleton_enforced_when_asked(self):
        with pytest.raises(InvariantViolation):
            require_fault_bound(1, 1, allow_singleton=False)


def _result(n=4, d=3, **overrides) -> ConsensusResult:
    defaults = dict(
        value=np.zeros(d),
        accepted=np.ones(n, dtype=bool),
        cost=CostModel(model_messages=n, scalar_messages=n * n, rounds=1),
        info={},
    )
    defaults.update(overrides)
    return ConsensusResult(**defaults)


class TestCheckConsensusResult:
    def test_well_formed_passes(self):
        check_consensus_result(_result(), n=4, d=3)

    def test_committee_subset_passes(self):
        result = _result(info={"committee": [0, 2, 3]})
        check_consensus_result(result, n=4, d=3)

    def test_wrong_mask_dtype(self):
        result = _result(accepted=np.ones(4, dtype=np.int64))
        with pytest.raises(InvariantViolation, match="bool"):
            check_consensus_result(result, n=4, d=3)

    def test_wrong_mask_shape(self):
        result = _result(accepted=np.ones(5, dtype=bool))
        with pytest.raises(InvariantViolation, match="accepted mask"):
            check_consensus_result(result, n=4, d=3)

    def test_liveness_requires_an_accepted_proposal(self):
        result = _result(accepted=np.zeros(4, dtype=bool))
        with pytest.raises(InvariantViolation, match="liveness"):
            check_consensus_result(result, n=4, d=3)

    def test_value_dimension(self):
        result = _result(value=np.zeros(7))
        with pytest.raises(InvariantViolation, match="shape"):
            check_consensus_result(result, n=4, d=3)

    @pytest.mark.parametrize(
        "field", ["model_messages", "scalar_messages", "rounds", "scalar_bytes"]
    )
    def test_negative_cost_rejected(self, field):
        cost = CostModel()
        setattr(cost, field, -1)
        with pytest.raises(InvariantViolation, match=field):
            check_consensus_result(_result(cost=cost), n=4, d=3)

    def test_committee_out_of_range(self):
        result = _result(info={"committee": [0, 4]})
        with pytest.raises(InvariantViolation, match="outside"):
            check_consensus_result(result, n=4, d=3)

    def test_committee_duplicates(self):
        result = _result(info={"committee": [1, 1, 2]})
        with pytest.raises(InvariantViolation, match="duplicates"):
            check_consensus_result(result, n=4, d=3)

    def test_protocol_label_in_message(self):
        result = _result(accepted=np.zeros(4, dtype=bool))
        with pytest.raises(InvariantViolation, match="my-protocol"):
            check_consensus_result(result, n=4, d=3, protocol="my-protocol")
