"""Tests for the Dataset container and batching."""

import numpy as np
import pytest

from repro.data.dataset import Dataset, minibatches, train_test_split


def make_ds(n=20, d=4, n_classes=3, seed=0):
    rng = np.random.default_rng(seed)
    return Dataset(rng.standard_normal((n, d)), rng.integers(0, n_classes, n), n_classes)


class TestDataset:
    def test_basic_properties(self):
        ds = make_ds()
        assert len(ds) == 20
        assert ds.n_features == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((3, 2, 2)), np.zeros(3), 2)  # 3-D X
        with pytest.raises(ValueError):
            Dataset(np.zeros((3, 2)), np.zeros(4), 2)  # length mismatch
        with pytest.raises(ValueError):
            Dataset(np.zeros((3, 2)), np.array([0, 1, 5]), 2)  # label range
        with pytest.raises(ValueError):
            Dataset(np.zeros((3, 2)), np.zeros(3), 0)  # n_classes

    def test_subset_copies(self):
        ds = make_ds()
        sub = ds.subset(np.array([0, 1]))
        sub.X[0, 0] = 999.0
        assert ds.X[0, 0] != 999.0

    def test_label_counts(self):
        ds = Dataset(np.zeros((4, 1)), np.array([0, 0, 1, 2]), 4)
        np.testing.assert_array_equal(ds.label_counts(), [2, 1, 1, 0])

    def test_shuffled_preserves_pairs(self, rng):
        ds = make_ds()
        shuffled = ds.shuffled(rng)
        # every (x, y) pair still present
        orig = {(round(float(x[0]), 9), int(y)) for x, y in zip(ds.X, ds.y)}
        new = {(round(float(x[0]), 9), int(y)) for x, y in zip(shuffled.X, shuffled.y)}
        assert orig == new


class TestSplit:
    def test_sizes(self, rng):
        train, test = train_test_split(make_ds(100), 0.2, rng)
        assert len(test) == 20
        assert len(train) == 80

    def test_disjoint_and_complete(self, rng):
        ds = make_ds(50)
        ds.X[:, 0] = np.arange(50)  # unique marker
        train, test = train_test_split(ds, 0.3, rng)
        markers = sorted(train.X[:, 0].tolist() + test.X[:, 0].tolist())
        assert markers == list(range(50))

    def test_invalid_fraction(self, rng):
        with pytest.raises(ValueError):
            train_test_split(make_ds(), 0.0, rng)
        with pytest.raises(ValueError):
            train_test_split(make_ds(), 1.0, rng)


class TestMinibatches:
    def test_covers_dataset(self, rng):
        ds = make_ds(25)
        total = sum(len(y) for _, y in minibatches(ds, 8, rng))
        assert total == 25

    def test_drop_last(self, rng):
        ds = make_ds(25)
        sizes = [len(y) for _, y in minibatches(ds, 8, rng, drop_last=True)]
        assert sizes == [8, 8, 8]

    def test_batch_size_validation(self, rng):
        with pytest.raises(ValueError):
            list(minibatches(make_ds(), 0, rng))

    def test_shuffling_differs_between_rngs(self):
        ds = make_ds(32)
        b1 = next(iter(minibatches(ds, 32, np.random.default_rng(1))))[1]
        b2 = next(iter(minibatches(ds, 32, np.random.default_rng(2))))[1]
        assert not np.array_equal(b1, b2)
