"""Tests for dense layers, including numerical gradient checks."""

import numpy as np
import pytest

from repro.nn.layers import Linear, ReLU, Tanh


def numeric_grad(f, x, eps=1e-6):
    """Central-difference gradient of scalar f wrt array x."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        plus = f()
        x[idx] = orig - eps
        minus = f()
        x[idx] = orig
        grad[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


class TestLinear:
    def test_forward_shape(self, rng):
        layer = Linear(5, 3, rng)
        out = layer.forward(rng.standard_normal((7, 5)))
        assert out.shape == (7, 3)

    def test_forward_matches_manual(self, rng):
        layer = Linear(4, 2, rng)
        x = rng.standard_normal((3, 4))
        np.testing.assert_allclose(layer.forward(x), x @ layer.W + layer.b)

    def test_invalid_dims(self, rng):
        with pytest.raises(ValueError):
            Linear(0, 3, rng)
        with pytest.raises(ValueError):
            Linear(3, -1, rng)

    def test_unknown_init(self, rng):
        with pytest.raises(ValueError):
            Linear(2, 2, rng, init="bogus")

    def test_zeros_init(self, rng):
        layer = Linear(3, 3, rng, init="zeros")
        assert np.all(layer.W == 0)

    def test_backward_before_forward(self, rng):
        layer = Linear(2, 2, rng)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 2)))

    def test_weight_gradient_numerically(self, rng):
        layer = Linear(4, 3, rng)
        x = rng.standard_normal((5, 4))
        target_grad = rng.standard_normal((5, 3))

        def loss():
            return float(np.sum(layer.forward(x, train=False) * target_grad))

        layer.forward(x, train=True)
        layer.backward(target_grad)
        np.testing.assert_allclose(layer.dW, numeric_grad(loss, layer.W), atol=1e-5)
        np.testing.assert_allclose(layer.db, numeric_grad(loss, layer.b), atol=1e-5)

    def test_input_gradient_numerically(self, rng):
        layer = Linear(4, 3, rng)
        x = rng.standard_normal((2, 4))
        target_grad = rng.standard_normal((2, 3))
        layer.forward(x, train=True)
        dx = layer.backward(target_grad)

        def loss():
            return float(np.sum(layer.forward(x, train=False) * target_grad))

        np.testing.assert_allclose(dx, numeric_grad(loss, x), atol=1e-5)


class TestReLU:
    def test_forward_clips_negatives(self):
        layer = ReLU()
        out = layer.forward(np.array([[-1.0, 0.0, 2.0]]))
        np.testing.assert_array_equal(out, [[0.0, 0.0, 2.0]])

    def test_backward_masks(self):
        layer = ReLU()
        layer.forward(np.array([[-1.0, 3.0]]), train=True)
        dx = layer.backward(np.array([[5.0, 7.0]]))
        np.testing.assert_array_equal(dx, [[0.0, 7.0]])

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            ReLU().backward(np.zeros((1, 1)))

    def test_no_params(self):
        assert ReLU().params == []
        assert ReLU().grads == []


class TestTanh:
    def test_forward_range(self, rng):
        out = Tanh().forward(rng.standard_normal((4, 4)) * 10)
        assert np.all(np.abs(out) <= 1.0)

    def test_gradient_numerically(self, rng):
        layer = Tanh()
        x = rng.standard_normal((3, 3))
        g = rng.standard_normal((3, 3))
        layer.forward(x, train=True)
        dx = layer.backward(g)

        def loss():
            return float(np.sum(np.tanh(x) * g))

        np.testing.assert_allclose(dx, numeric_grad(loss, x), atol=1e-5)

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            Tanh().backward(np.zeros((1, 1)))
