"""Per-rule fixtures for the ``tools/abdlint.py`` determinism linter.

Each rule gets a positive (must fire) and negative (must stay silent)
fixture, plus the exemption and pragma semantics the codebase relies on.
The final test is the PR's acceptance criterion itself: the real tree
lints clean.
"""

from __future__ import annotations

import pathlib
import sys

import pytest

REPO = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "tools"))

import abdlint  # noqa: E402


def rules_at(source: str, path: str = "src/repro/example.py") -> set[str]:
    return {f.rule for f in abdlint.lint_source(source, path=path)}


class TestSelfTest:
    def test_every_rule_fires_and_suppresses(self):
        assert abdlint.self_test() == []

    def test_builtin_fixtures(self):
        for rule, pairs in abdlint._FIXTURES.items():
            for bad, good in pairs:
                assert rule in rules_at(bad), rule
                assert rules_at(good) == set(), rule


class TestDET001:
    def test_module_level_numpy_rng(self):
        src = "import numpy as np\nx = np.random.rand(3)\n"
        assert rules_at(src) == {"DET001"}

    def test_default_rng_flagged_in_src(self):
        src = "import numpy as np\nrng = np.random.default_rng(0)\n"
        assert "DET001" in rules_at(src)

    def test_default_rng_allowed_in_tests_and_benchmarks(self):
        src = "import numpy as np\nrng = np.random.default_rng(0)\n"
        assert rules_at(src, path="tests/test_x.py") == set()
        assert rules_at(src, path="benchmarks/bench_x.py") == set()

    def test_stdlib_random(self):
        src = "import random\nx = random.random()\n"
        assert rules_at(src) == {"DET001"}
        assert rules_at(src, path="tests/test_x.py") == {"DET001"}

    def test_import_alias_resolved(self):
        src = "import numpy.random as npr\nx = npr.rand(3)\n"
        assert rules_at(src) == {"DET001"}

    def test_seeding_module_exempt(self):
        src = "import numpy as np\nrng = np.random.default_rng(0)\n"
        assert rules_at(src, path="src/repro/utils/seeding.py") == set()

    def test_seeded_generator_is_clean(self):
        src = (
            "from repro.utils.seeding import seeded_generator\n"
            "x = seeded_generator(7).random(3)\n"
        )
        assert rules_at(src) == set()


class TestDET002:
    @pytest.mark.parametrize(
        "call",
        ["time.time()", "time.perf_counter()", "time.monotonic_ns()"],
    )
    def test_time_module(self, call):
        src = f"import time\nt = {call}\n"
        assert rules_at(src) == {"DET002"}

    def test_datetime_now(self):
        src = "import datetime\nt = datetime.datetime.now()\n"
        assert rules_at(src) == {"DET002"}
        src = "from datetime import datetime\nt = datetime.now()\n"
        assert rules_at(src) == {"DET002"}

    def test_from_import_resolved(self):
        src = "from time import perf_counter\nt = perf_counter()\n"
        assert rules_at(src) == {"DET002"}

    def test_benchmarks_exempt(self):
        src = "import time\nt = time.perf_counter()\n"
        assert rules_at(src, path="benchmarks/bench_x.py") == set()

    def test_simulation_time_is_clean(self):
        src = "def run(sim):\n    return sim.now\n"
        assert rules_at(src) == set()


class TestDET003:
    def test_for_over_set_literal(self):
        src = "for x in {1, 2, 3}:\n    go(x)\n"
        assert rules_at(src) == {"DET003"}

    def test_for_over_set_call(self):
        src = "for x in set(items):\n    go(x)\n"
        assert rules_at(src) == {"DET003"}

    def test_tracked_set_variable(self):
        src = "pending = set(a) - set(b)\nfor x in pending:\n    go(x)\n"
        assert rules_at(src) == {"DET003"}

    def test_reassignment_clears_tracking(self):
        src = "pending = set(a)\npending = sorted(pending)\nfor x in pending:\n    go(x)\n"
        assert rules_at(src) == set()

    def test_comprehension_over_set(self):
        src = "out = [f(x) for x in {1, 2}]\n"
        assert rules_at(src) == {"DET003"}

    def test_set_operator_binop(self):
        src = "for x in set(a) | set(b):\n    go(x)\n"
        assert rules_at(src) == {"DET003"}

    def test_sorted_wrap_is_clean(self):
        src = "pending = set(a)\nfor x in sorted(pending):\n    go(x)\n"
        assert rules_at(src) == set()

    def test_membership_and_len_are_clean(self):
        src = "seen = set(a)\nok = b in seen\nn = len(seen)\n"
        assert rules_at(src) == set()


class TestDET004:
    POOL_IMPORT = "from multiprocessing import Pool\n"

    def test_import_multiprocessing(self):
        assert rules_at("import multiprocessing\n") == {"DET004"}

    def test_from_import(self):
        assert rules_at(self.POOL_IMPORT) == {"DET004"}

    def test_submodule_import(self):
        assert rules_at("import multiprocessing.pool\n") == {"DET004"}

    def test_concurrent_futures(self):
        assert rules_at("import concurrent.futures\n") == {"DET004"}
        assert rules_at("from concurrent.futures import ProcessPoolExecutor\n") == {
            "DET004"
        }

    def test_fires_in_tests_and_benchmarks_too(self):
        # Unlike DET001/DET002 there is no tests/ exemption: ad-hoc pools
        # are nondeterministic wherever they run.
        assert rules_at(self.POOL_IMPORT, path="tests/test_x.py") == {"DET004"}
        assert rules_at(self.POOL_IMPORT, path="benchmarks/bench_x.py") == {
            "DET004"
        }

    def test_parallel_package_exempt(self):
        for module in ("pool.py", "worker.py", "config.py"):
            path = f"src/repro/parallel/{module}"
            assert rules_at(self.POOL_IMPORT, path=path) == set(), module

    def test_parallel_map_is_clean(self):
        src = (
            "from repro.parallel import parallel_map\n"
            "out = parallel_map(str, [1, 2], workers=2)\n"
        )
        assert rules_at(src) == set()


class TestNUM001:
    ARRAY_EQ = (
        "import numpy as np\n"
        "def same(a: np.ndarray, b: np.ndarray) -> bool:\n"
        "    return bool((a == b).all())\n"
    )

    def test_annotated_array_equality(self):
        assert rules_at(self.ARRAY_EQ) == {"NUM001"}

    def test_tests_exempt(self):
        assert rules_at(self.ARRAY_EQ, path="tests/test_x.py") == set()

    def test_nan_comparison(self):
        src = "import numpy as np\ndef f(x):\n    return x == np.nan\n"
        assert rules_at(src) == {"NUM001"}
        src = "def f(x):\n    return x != float('nan')\n"
        assert rules_at(src) == {"NUM001"}

    def test_scalar_int_comparison_is_clean(self):
        src = "def f(n: int):\n    return n == 0\n"
        assert rules_at(src) == set()

    def test_array_equal_is_clean(self):
        src = (
            "import numpy as np\n"
            "def same(a: np.ndarray, b: np.ndarray) -> bool:\n"
            "    return np.array_equal(a, b)\n"
        )
        assert rules_at(src) == set()


class TestINV001:
    def test_two_f_plus_one(self):
        src = "def quorum(f: int) -> int:\n    return 2 * f + 1\n"
        assert rules_at(src) == {"INV001"}
        src = "def quorum(f: int) -> int:\n    return 1 + f * 2\n"
        assert rules_at(src) == {"INV001"}

    def test_floor_div_three(self):
        src = "def cap(n: int) -> int:\n    return (n - 1) // 3\n"
        assert rules_at(src) == {"INV001"}

    def test_three_f_compare(self):
        src = "def ok(n: int, f: int) -> bool:\n    return 3 * f < n\n"
        assert rules_at(src) == {"INV001"}

    def test_plain_triple_product_is_clean(self):
        # 3 * views outside a comparison is cost accounting, not a bound.
        src = "def rounds(views: int) -> int:\n    return 3 * views\n"
        assert rules_at(src) == set()

    def test_invariants_module_and_tests_exempt(self):
        src = "q = 2 * f + 1\n"
        assert rules_at(src, path="src/repro/check/invariants.py") == set()
        assert rules_at(src, path="tests/test_x.py") == set()

    def test_helpers_are_clean(self):
        src = (
            "from repro.check.invariants import quorum_size\n"
            "def quorum(f: int) -> int:\n    return quorum_size(f)\n"
        )
        assert rules_at(src) == set()


class TestSCN001:
    NESTED_SWEEP = (
        "def sweep(defences, attacks):\n"
        "    out = []\n"
        "    for defence in defences:\n"
        "        for attack in attacks:\n"
        "            out.append(run(defence, attack))\n"
        "    return out\n"
    )

    def test_nested_axis_loops(self):
        assert rules_at(self.NESTED_SWEEP) == {"SCN001"}

    def test_axis_constants_resolved(self):
        src = (
            "from repro.experiments.matrix import DEFAULT_ATTACKS, DEFAULT_DEFENCES\n"
            "cells = [run(d, a) for d in DEFAULT_DEFENCES for a in DEFAULT_ATTACKS]\n"
        )
        assert rules_at(src) == {"SCN001"}

    def test_loop_wrapping_calls_unwrapped(self):
        src = (
            "def sweep(fractions, attacks):\n"
            "    for fraction in sorted(fractions):\n"
            "        for attack in list(attacks):\n"
            "            run(attack, fraction)\n"
        )
        assert rules_at(src) == {"SCN001"}

    def test_single_axis_loop_is_clean(self):
        src = "for attack in attacks:\n    run(attack)\n"
        assert rules_at(src) == set()

    def test_unrelated_inner_loop_is_clean(self):
        src = (
            "for defence in defences:\n"
            "    for round_idx in range(30):\n"
            "        step(defence, round_idx)\n"
        )
        assert rules_at(src) == set()

    def test_scenario_package_exempt(self):
        assert rules_at(self.NESTED_SWEEP, path="src/repro/scenario/grid.py") == set()

    def test_tests_and_benchmarks_exempt(self):
        assert rules_at(self.NESTED_SWEEP, path="tests/test_x.py") == set()
        assert rules_at(self.NESTED_SWEEP, path="benchmarks/bench_x.py") == set()

    def test_pragma_suppresses(self):
        src = (
            "for defence in defences:\n"
            "    for attack in attacks:  # abdlint: ignore[SCN001]\n"
            "        run(defence, attack)\n"
        )
        assert rules_at(src) == set()


class TestOBS001:
    PRINTING = "def announce(gap):\n    print(f'gap {gap:.3f}')\n"

    def test_print_in_library_code(self):
        assert rules_at(self.PRINTING) == {"OBS001"}

    def test_builtins_print_alias(self):
        src = "import builtins\nbuiltins.print('x')\n"
        assert rules_at(src) == {"OBS001"}

    def test_emission_modules_exempt(self):
        for path in (
            "src/repro/cli.py",
            "src/repro/obs/report.py",
            "src/repro/utils/reporting.py",
        ):
            assert rules_at(self.PRINTING, path=path) == set(), path

    def test_outside_src_is_clean(self):
        assert rules_at(self.PRINTING, path="examples/demo.py") == set()
        assert rules_at(self.PRINTING, path="tests/test_x.py") == set()
        assert rules_at(self.PRINTING, path="benchmarks/bench_x.py") == set()

    def test_shadowed_print_is_clean(self):
        # A local callable named something else entirely never fires.
        src = "def announce(gap, emit):\n    emit(gap)\n"
        assert rules_at(src) == set()

    def test_pragma_suppresses(self):
        src = "def announce(gap):\n    print(gap)  # abdlint: ignore[OBS001]\n"
        assert rules_at(src) == set()


class TestPragmasAndCLI:
    def test_bare_pragma_suppresses_all(self):
        src = "import time\nt = time.time()  # abdlint: ignore\n"
        assert rules_at(src) == set()

    def test_rule_list_pragma(self):
        src = "import time\nt = time.time()  # abdlint: ignore[DET002]\n"
        assert rules_at(src) == set()

    def test_wrong_rule_pragma_does_not_suppress(self):
        src = "import time\nt = time.time()  # abdlint: ignore[DET001]\n"
        assert rules_at(src) == {"DET002"}

    def test_select_subset(self):
        src = "import time\nimport random\nt = time.time()\nx = random.random()\n"
        findings = abdlint.lint_source(
            src, path="src/x.py", select={"DET002"}
        )
        assert {f.rule for f in findings} == {"DET002"}

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError):
            abdlint.lint_source("x = 1\n", select={"BOGUS"})

    def test_syntax_error_reported_not_raised(self):
        findings = abdlint.lint_source("def broken(:\n", path="src/x.py")
        assert [f.rule for f in findings] == ["E999"]

    def test_cli_exit_codes(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nt = time.time()\n")
        assert abdlint.main([str(bad)]) == 1
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        assert abdlint.main([str(good)]) == 0
        capsys.readouterr()

    def test_finding_render_is_clickable(self):
        finding = abdlint.lint_source(
            "import time\nt = time.time()\n", path="src/x.py"
        )[0]
        assert finding.render().startswith("src/x.py:2:")


class TestRealTree:
    def test_repository_lints_clean(self):
        """Acceptance criterion: the shipped tree has zero findings."""
        paths = [str(REPO / p) for p in ("src", "tests", "benchmarks", "tools")]
        findings = abdlint.lint_paths(paths)
        assert findings == [], "\n".join(f.render() for f in findings)
