"""Tests for the local trainer (Algorithm 2)."""

import numpy as np
import pytest

from repro.core.config import TrainingConfig
from repro.core.local import GlobalArrival, LocalTrainer
from repro.data.dataset import Dataset


def make_trainer(rng, tiny_model, n=60, iterations=5):
    X = rng.standard_normal((n, 64))
    y = rng.integers(0, 10, n)
    return LocalTrainer(
        device_id=0,
        dataset=Dataset(X, y, 10),
        model=tiny_model.clone(),
        config=TrainingConfig(local_iterations=iterations, batch_size=16, learning_rate=0.1),
        rng=rng,
    )


class TestGlobalArrival:
    def test_validation(self):
        with pytest.raises(ValueError):
            GlobalArrival(iteration=-1, vector=np.zeros(3), alpha=0.5)
        with pytest.raises(ValueError):
            GlobalArrival(iteration=0, vector=np.zeros(3), alpha=0.0)
        with pytest.raises(ValueError):
            GlobalArrival(iteration=0, vector=np.zeros(3), alpha=1.5)


class TestLocalTrainer:
    def test_empty_dataset_rejected(self, rng, tiny_model):
        with pytest.raises(ValueError):
            LocalTrainer(
                device_id=0,
                dataset=Dataset(np.zeros((0, 4)), np.zeros(0, dtype=int), 10),
                model=tiny_model,
                config=TrainingConfig(),
                rng=rng,
            )

    def test_starts_from_given_vector(self, rng, tiny_model):
        trainer = make_trainer(rng, tiny_model)
        start = np.zeros(trainer.model.n_params)
        trainer.train_round(start)
        # model was loaded from `start` then trained: must differ from start
        assert not np.allclose(trainer.model.get_flat(), start)

    def test_runs_exactly_t_iterations(self, rng, tiny_model):
        trainer = make_trainer(rng, tiny_model, iterations=7)
        trainer.train_round(trainer.model.get_flat())
        assert len(trainer.last_losses) == 7

    def test_loss_trend_downward(self, rng, tiny_model):
        trainer = make_trainer(rng, tiny_model, n=200, iterations=60)
        trainer.train_round(trainer.model.get_flat())
        first = np.mean(trainer.last_losses[:10])
        last = np.mean(trainer.last_losses[-10:])
        assert last < first

    def test_merge_alpha_one_replaces(self, rng, tiny_model):
        """alpha=1 with arrival at T: final params equal the global model
        exactly (Eq. 1 degenerate case)."""
        trainer = make_trainer(rng, tiny_model, iterations=3)
        global_vec = np.full(trainer.model.n_params, 0.123)
        arrival = GlobalArrival(iteration=99, vector=global_vec, alpha=1.0)
        result = trainer.train_round(trainer.model.get_flat(), arrival)
        np.testing.assert_allclose(result, global_vec)

    def test_merge_interpolates(self, tiny_model):
        """Eq. 1: theta' = alpha*theta_G + (1-alpha)*theta, applied after
        the last iteration when arrival.iteration >= T."""
        trainer = make_trainer(np.random.default_rng(7), tiny_model, iterations=2)
        start = trainer.model.get_flat()
        no_merge = trainer.train_round(start)

        trainer2 = make_trainer(np.random.default_rng(7), tiny_model, iterations=2)
        global_vec = np.ones(trainer2.model.n_params)
        arrival = GlobalArrival(iteration=99, vector=global_vec, alpha=0.25)
        merged = trainer2.train_round(start, arrival)
        np.testing.assert_allclose(
            merged, 0.25 * global_vec + 0.75 * no_merge, atol=1e-9
        )

    def test_mid_training_merge_changes_outcome(self, tiny_model):
        trainer = make_trainer(np.random.default_rng(7), tiny_model, iterations=5)
        start = trainer.model.get_flat()
        plain = trainer.train_round(start)
        trainer2 = make_trainer(np.random.default_rng(7), tiny_model, iterations=5)
        arrival = GlobalArrival(
            iteration=2, vector=np.zeros_like(start), alpha=0.9
        )
        merged = trainer2.train_round(start, arrival)
        assert not np.allclose(plain, merged)

    def test_deterministic_given_seed(self, tiny_model):
        a = make_trainer(np.random.default_rng(5), tiny_model)
        b = make_trainer(np.random.default_rng(5), tiny_model)
        start = a.model.get_flat()
        np.testing.assert_array_equal(a.train_round(start), b.train_round(start))
