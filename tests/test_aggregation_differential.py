"""Differential harness: fast aggregation path vs per-vector oracles.

Every rule registered in :mod:`repro.aggregation` ships in two builds —
the vectorised fast path and a deliberately-naive per-vector reference
(``get_aggregator(name, reference=True)``).  The contract is **bit
equivalence**: for any valid input the two must return byte-identical
arrays (``np.array_equal``, never ``allclose``).  These tests sweep that
contract over randomized honest/Byzantine mixtures built from the real
attack implementations, degenerate inputs, an exact-integer domain where
even naive formula reorderings cannot hide, and stateful rules across
rounds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.aggregation import (
    ParameterMatrix,
    available_aggregators,
    geometric_median,
    get_aggregator,
)
from repro.attacks import ALIE, IPM, Scaling, SignFlip

ALL_RULES = available_aggregators()

ATTACKS = {
    "none": None,
    "sign_flip": SignFlip(),
    "scaling": Scaling(),
    "alie": ALIE(),
    "ipm": IPM(),
}


def assert_bit_equal(fast_out: np.ndarray, ref_out: np.ndarray, context: str) -> None:
    __tracebackhide__ = True
    if not np.array_equal(fast_out, ref_out):
        diff = np.abs(fast_out - ref_out)
        raise AssertionError(
            f"{context}: fast path diverged from reference "
            f"(max |diff| = {diff.max():.3e} at coordinate {int(diff.argmax())})"
        )


def make_mixture(
    attack_name: str, n: int, d: int, n_byz: int, seed: int
) -> np.ndarray:
    """Honest SGD-like cluster, optionally with fabricated Byzantine rows."""
    rng = np.random.default_rng(seed)
    center = rng.standard_normal(d)
    honest = center + 0.1 * rng.standard_normal((n - n_byz, d))
    attack = ATTACKS[attack_name]
    if attack is None or n_byz == 0:
        extra = center + 0.1 * rng.standard_normal((n_byz, d))
        return np.vstack([honest, extra]) if n_byz else honest
    byz = attack(honest, n_byz, rng)
    return np.vstack([honest, byz])


class TestRegistryParity:
    def test_every_rule_has_a_reference_oracle(self):
        assert available_aggregators() == available_aggregators(reference=True)

    def test_reference_flag_selects_different_implementations(self):
        for name in ALL_RULES:
            fast = get_aggregator(name)
            ref = get_aggregator(name, reference=True)
            assert type(fast) is not type(ref), name


class TestRandomizedMixtures:
    """The core differential sweep: every rule x every attack, exact."""

    @pytest.mark.parametrize("rule", ALL_RULES)
    @pytest.mark.parametrize("attack", sorted(ATTACKS))
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_fast_equals_reference(self, rule, attack, seed):
        n, d = 13, 37
        updates = make_mixture(attack, n, d, n_byz=3, seed=seed)
        rng = np.random.default_rng(seed + 1000)
        weights = rng.random(n) + 0.25
        fast = get_aggregator(rule)
        ref = get_aggregator(rule, reference=True)
        out_fast = fast(updates.copy(), weights.copy())
        out_ref = ref(updates.copy(), weights.copy())
        assert_bit_equal(out_fast, out_ref, f"{rule}/{attack}/seed={seed}")
        assert out_fast.dtype == np.float64

    @pytest.mark.parametrize("rule", ALL_RULES)
    @pytest.mark.parametrize("n,d", [(4, 3), (9, 128), (24, 11)])
    def test_fast_equals_reference_unweighted(self, rule, n, d):
        updates = make_mixture("alie", n, d, n_byz=max(1, n // 4), seed=n * d)
        fast = get_aggregator(rule)
        ref = get_aggregator(rule, reference=True)
        assert_bit_equal(fast(updates), ref(updates), f"{rule}/{n}x{d}")

    @pytest.mark.parametrize("rule", ALL_RULES)
    def test_input_form_is_irrelevant(self, rule):
        """ndarray, list-of-vectors and a prebuilt ParameterMatrix all give
        the same bits — the matrix is a cache, not a different algorithm."""
        updates = make_mixture("ipm", 10, 23, n_byz=2, seed=99)
        weights = np.linspace(0.5, 2.0, 10)
        # Fresh instance per call: stateful rules (lipschitz) must see the
        # same history for each input form.
        from_array = get_aggregator(rule)(updates, weights)
        from_list = get_aggregator(rule)([row for row in updates], weights)
        from_matrix = get_aggregator(rule)(ParameterMatrix(updates, weights))
        assert_bit_equal(from_array, from_list, f"{rule}: array vs list")
        assert_bit_equal(from_array, from_matrix, f"{rule}: array vs matrix")


class TestDegenerateInputs:
    @pytest.mark.parametrize("rule", ALL_RULES)
    def test_single_update(self, rule):
        updates = np.random.default_rng(7).standard_normal((1, 9))
        fast = get_aggregator(rule)
        ref = get_aggregator(rule, reference=True)
        assert_bit_equal(fast(updates), ref(updates), f"{rule}: n=1")

    @pytest.mark.parametrize("rule", ALL_RULES)
    def test_all_identical_updates(self, rule):
        vector = np.random.default_rng(8).standard_normal(17)
        updates = np.tile(vector, (6, 1))
        fast = get_aggregator(rule)
        ref = get_aggregator(rule, reference=True)
        out_fast = fast(updates)
        assert_bit_equal(out_fast, ref(updates), f"{rule}: identical")
        assert np.all(np.isfinite(out_fast))

    @pytest.mark.parametrize("rule", ["krum", "multikrum"])
    def test_f_zero(self, rule):
        updates = make_mixture("none", 8, 12, n_byz=0, seed=3)
        fast = get_aggregator(rule, f=0)
        ref = get_aggregator(rule, reference=True, f=0)
        assert_bit_equal(fast(updates), ref(updates), f"{rule}: f=0")

    @pytest.mark.parametrize("rule", ["krum", "multikrum"])
    @pytest.mark.parametrize("n", [4, 7, 12])
    def test_f_at_tolerance_bound(self, rule, n):
        """f = k - 3 leaves exactly one Krum neighbour — the boundary of
        the rule's definition."""
        updates = make_mixture("sign_flip", n, 10, n_byz=1, seed=n)
        fast = get_aggregator(rule, f=n - 3)
        ref = get_aggregator(rule, reference=True, f=n - 3)
        assert_bit_equal(fast(updates), ref(updates), f"{rule}: f=k-3, k={n}")

    @pytest.mark.parametrize("rule", ["krum", "multikrum"])
    @pytest.mark.parametrize("n", [2, 3])
    def test_tiny_stacks_take_fallback_path(self, rule, n):
        """k <= 3 cannot satisfy k - f - 2 >= 1 with f >= 1; both builds
        must agree on the documented median fallback."""
        updates = make_mixture("none", n, 6, n_byz=0, seed=n)
        fast = get_aggregator(rule)
        ref = get_aggregator(rule, reference=True)
        assert_bit_equal(fast(updates), ref(updates), f"{rule}: k={n}")

    @pytest.mark.parametrize("rule", ALL_RULES)
    def test_zero_weight_entries(self, rule):
        updates = make_mixture("scaling", 9, 15, n_byz=2, seed=21)
        weights = np.array([1.0, 0.0, 2.0, 1.0, 0.0, 1.0, 1.0, 3.0, 1.0])
        fast = get_aggregator(rule)
        ref = get_aggregator(rule, reference=True)
        out_fast = fast(updates, weights)
        assert_bit_equal(out_fast, ref(updates, weights), f"{rule}: zero weights")
        assert np.all(np.isfinite(out_fast))


class TestExactIntegerDomain:
    """Small-integer updates make every sum exact in float64, so here even
    an *algebraically* equivalent reordering cannot produce a mismatch —
    any failure is a real logic divergence, not rounding."""

    @pytest.mark.parametrize("rule", ALL_RULES)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_integer_updates_match_exactly(self, rule, seed):
        rng = np.random.default_rng(seed)
        updates = rng.integers(-4, 5, size=(11, 19)).astype(np.float64)
        weights = rng.integers(1, 5, size=11).astype(np.float64)
        fast = get_aggregator(rule)
        ref = get_aggregator(rule, reference=True)
        assert_bit_equal(
            fast(updates, weights), ref(updates, weights), f"{rule}: integers"
        )


class TestStatefulRules:
    """Rules carrying state between rounds must stay bit-equal round by
    round, not just on the first call."""

    def test_lipschitz_two_rounds(self):
        fast = get_aggregator("lipschitz")
        ref = get_aggregator("lipschitz", reference=True)
        for round_seed in (0, 1, 2):
            updates = make_mixture("alie", 10, 14, n_byz=2, seed=round_seed)
            assert_bit_equal(
                fast(updates), ref(updates), f"lipschitz round {round_seed}"
            )

    def test_centered_clipping_stateful_two_rounds(self):
        fast = get_aggregator("centered_clipping", stateful=True)
        ref = get_aggregator("centered_clipping", reference=True, stateful=True)
        for round_seed in (0, 1, 2):
            updates = make_mixture("ipm", 9, 14, n_byz=2, seed=round_seed)
            assert_bit_equal(
                fast(updates), ref(updates), f"clipping round {round_seed}"
            )


class TestGeoMedRegressions:
    """Regression coverage for the Weiszfeld zero-distance anchor guard."""

    def test_duplicated_update_vector_no_nan(self):
        """Two identical rows used to make an iterate land exactly on a
        data point; the naive 1/dist re-weighting then divided by zero."""
        v = np.array([1.0, 2.0, 3.0])
        updates = np.stack([v, v, np.array([10.0, 10.0, 10.0]),
                            np.array([-8.0, 0.0, 4.0])])
        out = geometric_median(updates)
        assert np.all(np.isfinite(out))
        # The duplicated pair is a strict majority by weight against two
        # scattered points pulling in opposite directions: the geometric
        # median is the duplicate itself.
        dup_heavy = np.vstack([np.tile(v, (3, 1)), updates[2:]])
        anchored = geometric_median(dup_heavy)
        np.testing.assert_array_equal(anchored, v)

    def test_duplicate_matches_reference(self):
        v = np.full(5, 0.5)
        updates = np.vstack([np.tile(v, (2, 1)),
                             np.random.default_rng(0).standard_normal((3, 5))])
        fast = get_aggregator("geomed")
        ref = get_aggregator("geomed", reference=True)
        assert_bit_equal(fast(updates), ref(updates), "geomed duplicate rows")

    def test_zero_weight_point_at_optimum_is_not_returned(self):
        """A zero-weight vector placed where Weiszfeld starts (the weighted
        mean) must neither be returned as the 'median' nor poison the
        iteration with 0/0 weights."""
        rng = np.random.default_rng(5)
        honest = rng.standard_normal((4, 6))
        weights = np.array([1.0, 1.0, 1.0, 1.0, 0.0])
        start = np.average(honest, axis=0)  # iterate 0 for the honest set
        updates = np.vstack([honest, start[None, :]])
        out = geometric_median(updates, weights)
        assert np.all(np.isfinite(out))
        expected = geometric_median(honest)
        np.testing.assert_allclose(out, expected, atol=1e-6)

    def test_anchor_on_positive_weight_duplicate_is_exact_row(self):
        """When the anchor fires it must return the data row itself (a
        copy), not a reconstruction with rounding."""
        v = np.array([0.1, -0.2, 0.3, 12.5])
        updates = np.vstack([np.tile(v, (5, 1)),
                             np.array([[100.0, 100.0, 100.0, 100.0]])])
        out = geometric_median(updates)
        np.testing.assert_array_equal(out, v)
