"""Tests for committee, PBFT, PoS and approximate-agreement consensus."""

import numpy as np
import pytest

from repro.consensus import (
    ApproximateAgreement,
    CommitteeConsensus,
    PBFTConsensus,
    PoSValidation,
)


def proposals_with_outlier(rng, n=7, d=10, magnitude=100.0):
    center = rng.standard_normal(d)
    good = center + 0.05 * rng.standard_normal((n - 1, d))
    bad = center + magnitude
    return np.vstack([good, bad[None, :]]), center


class TestCommittee:
    def test_excludes_outlier_with_full_committee(self, rng):
        proposals, center = proposals_with_outlier(rng, n=5)
        protocol = CommitteeConsensus(committee_size=5)
        result = protocol.agree(proposals, rng=rng)
        assert not result.accepted[-1]
        assert np.linalg.norm(result.value - center) < 1.0

    def test_committee_smaller_than_group(self, rng):
        proposals, _ = proposals_with_outlier(rng, n=8)
        protocol = CommitteeConsensus(committee_size=3)
        result = protocol.agree(proposals, rng=rng)
        assert len(result.info["committee"]) == 3

    def test_cost_scales_with_committee(self, rng):
        proposals, _ = proposals_with_outlier(rng, n=8)
        small = CommitteeConsensus(committee_size=2).agree(proposals, rng=rng)
        large = CommitteeConsensus(committee_size=8).agree(proposals, rng=rng)
        assert small.cost.total_messages() < large.cost.total_messages()

    def test_liveness_with_all_byzantine_committee(self, rng):
        proposals, _ = proposals_with_outlier(rng, n=4)
        byz = np.ones(4, dtype=bool)
        result = CommitteeConsensus(committee_size=4).agree(
            proposals, byzantine_mask=byz, rng=rng
        )
        assert result.accepted.any()  # a value is still decided

    def test_validation(self):
        with pytest.raises(ValueError):
            CommitteeConsensus(committee_size=0)


class TestPBFT:
    def test_agrees_near_honest(self, rng):
        proposals, center = proposals_with_outlier(rng, n=7)
        result = PBFTConsensus().agree(proposals, rng=rng)
        assert np.linalg.norm(result.value - center) < 1.0

    def test_safety_bound_enforced(self, rng):
        proposals, _ = proposals_with_outlier(rng, n=6)
        byz = np.array([True, True, False, False, False, False])
        # f=2, n=6: 3f >= n -> must raise
        with pytest.raises(ValueError):
            PBFTConsensus().agree(proposals, byzantine_mask=byz, rng=rng)

    def test_view_change_billed(self, rng):
        proposals, _ = proposals_with_outlier(rng, n=7)
        byz = np.zeros(7, dtype=bool)
        byz[:2] = True
        costs = []
        for seed in range(20):
            r = PBFTConsensus().agree(
                proposals, byzantine_mask=byz, rng=np.random.default_rng(seed)
            )
            costs.append((r.info["view_changes"], r.cost.scalar_messages))
        views = [v for v, _ in costs]
        assert max(views) > 0  # some permutation starts with a Byzantine primary
        # more view changes must cost more
        by_views = {}
        for v, c in costs:
            by_views.setdefault(v, set()).add(c)
        if len(by_views) > 1:
            v_sorted = sorted(by_views)
            assert min(by_views[v_sorted[-1]]) > max(by_views[v_sorted[0]])

    def test_validation(self):
        with pytest.raises(ValueError):
            PBFTConsensus(exclusion_quantile=1.0)


class TestPBFTSilentMembers:
    """Crash faults in PBFT: silent members propose nothing, and a silent
    primary times out into a view change instead of equivocating."""

    def test_silent_members_excluded_from_accepted(self, rng):
        proposals, center = proposals_with_outlier(rng, n=7)
        protocol = PBFTConsensus()
        silent = np.zeros(7, dtype=bool)
        silent[2] = True
        protocol.silent_mask = silent
        result = protocol.agree(proposals, rng=rng)
        assert not result.accepted[2]
        assert np.linalg.norm(result.value - center) < 1.0
        # the mask is one-shot: the next agree() sees a live quorum again
        assert protocol.silent_mask is None

    def test_silent_primary_counts_view_timeouts(self, rng):
        proposals, _ = proposals_with_outlier(rng, n=7)
        protocol = PBFTConsensus()
        timeouts = 0
        for seed in range(20):
            silent = np.zeros(7, dtype=bool)
            silent[0] = True
            protocol.silent_mask = silent
            r = protocol.agree(proposals, rng=np.random.default_rng(seed))
            assert r.info["view_timeouts"] <= r.info["view_changes"]
            timeouts += r.info["view_timeouts"]
        assert timeouts > 0  # some rotation started with the silent primary

    def test_silent_counted_against_safety_bound(self, rng):
        proposals, _ = proposals_with_outlier(rng, n=6)
        byz = np.array([True, False, False, False, False, False])
        silent = np.array([False, True, False, False, False, False])
        protocol = PBFTConsensus()
        protocol.silent_mask = silent
        # f = 1 Byzantine + 1 silent = 2, n = 6: 3f >= n -> unsafe
        with pytest.raises(ValueError):
            protocol.agree(proposals, byzantine_mask=byz, rng=rng)

    def test_bad_silent_mask_shape_rejected(self, rng):
        proposals, _ = proposals_with_outlier(rng, n=7)
        protocol = PBFTConsensus()
        protocol.silent_mask = np.zeros(3, dtype=bool)
        with pytest.raises(ValueError):
            protocol.agree(proposals, rng=rng)


class TestPoS:
    def test_excludes_outlier(self, rng):
        proposals, center = proposals_with_outlier(rng, n=6)
        result = PoSValidation().agree(proposals, rng=rng)
        assert not result.accepted[-1]
        assert np.linalg.norm(result.value - center) < 1.0

    def test_slashing_reduces_byzantine_stake(self, rng):
        proposals, _ = proposals_with_outlier(rng, n=5)
        byz = np.array([False, False, False, False, True])
        protocol = PoSValidation()
        first = protocol.agree(proposals, byzantine_mask=byz, rng=rng)
        second = protocol.agree(proposals, byzantine_mask=byz, rng=rng)
        stake = second.info["stake"]
        assert stake[-1] < stake[:-1].min()

    def test_reset_stake(self, rng):
        proposals, _ = proposals_with_outlier(rng, n=5)
        protocol = PoSValidation()
        protocol.agree(proposals, rng=rng)
        protocol.reset_stake()
        assert protocol._stake is None

    def test_validation(self):
        with pytest.raises(ValueError):
            PoSValidation(slash_factor=0.0)


class TestApproximateAgreement:
    def test_converges_to_epsilon(self, rng):
        proposals = rng.standard_normal((7, 5)) * 10
        protocol = ApproximateAgreement(epsilon=1e-4, f=0)
        result = protocol.agree(proposals, rng=rng)
        assert result.info["rounds"] >= 1

    def test_validity_within_honest_range(self, rng):
        """Coordinate-wise validity: the agreed vector stays inside the
        honest inputs' range despite extreme Byzantine injections."""
        honest = rng.standard_normal((7, 4))
        byz_mask = np.zeros(9, dtype=bool)
        byz_mask[7:] = True
        proposals = np.vstack([honest, np.zeros((2, 4))])
        protocol = ApproximateAgreement(epsilon=1e-6, f=2, adversary="extreme")
        result = protocol.agree(proposals, byzantine_mask=byz_mask, rng=rng)
        lo = honest.min(axis=0) - 1e-6
        hi = honest.max(axis=0) + 1e-6
        assert np.all(result.value >= lo) and np.all(result.value <= hi)

    def test_requires_n_gt_3f(self, rng):
        proposals = rng.standard_normal((6, 3))
        byz = np.zeros(6, dtype=bool)
        byz[:2] = True
        with pytest.raises(ValueError):
            ApproximateAgreement().agree(proposals, byzantine_mask=byz, rng=rng)

    def test_cost_counts_rounds(self, rng):
        proposals = rng.standard_normal((7, 5)) * 100
        result = ApproximateAgreement(epsilon=1e-8, f=0).agree(proposals, rng=rng)
        n = 7
        assert result.cost.model_messages == result.info["rounds"] * n * (n - 1)

    def test_already_agreed_zero_rounds(self, rng):
        proposals = np.tile(rng.standard_normal(4), (5, 1))
        result = ApproximateAgreement(epsilon=1e-3, f=0).agree(proposals, rng=rng)
        assert result.info["rounds"] == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ApproximateAgreement(epsilon=0)
        with pytest.raises(ValueError):
            ApproximateAgreement(adversary="chaotic")
