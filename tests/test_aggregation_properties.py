"""Property-based tests (hypothesis) for the aggregation invariants.

Invariants checked across rules:

* permutation invariance — shuffling the update stack never changes the
  aggregate (up to floating-point noise for iterative rules);
* translation equivariance — shifting all updates by ``c`` shifts the
  aggregate by ``c`` (holds for all implemented rules);
* bounded output — coordinate-wise, the aggregate stays inside the
  coordinate range of the inputs for the order-statistic rules;
* identical-input fixpoint — if all updates are equal, the aggregate
  equals them.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.aggregation import (
    CenteredClipping,
    ClusteringAggregator,
    FedAvg,
    GeoMed,
    Krum,
    Median,
    MultiKrum,
    TrimmedMean,
)

RULES = {
    "fedavg": lambda: FedAvg(),
    "median": lambda: Median(),
    "trimmed_mean": lambda: TrimmedMean(beta=0.2),
    "krum": lambda: Krum(byzantine_fraction=0.2),
    "multikrum": lambda: MultiKrum(byzantine_fraction=0.2),
    "geomed": lambda: GeoMed(),
    "centered_clipping": lambda: CenteredClipping(),
    "clustering": lambda: ClusteringAggregator(),
}

# Values are quantised to 1e-3 so additive shifts never run into
# floating-point absorption (1 + 1e-300 == 1), which would break exact
# equivariance for reasons unrelated to the rules under test.
updates_strategy = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(4, 10), st.integers(1, 6)),
    elements=st.floats(-100, 100, allow_nan=False, allow_infinity=False).map(
        lambda v: round(v, 3)
    ),
)


@pytest.mark.parametrize("rule_name", sorted(RULES))
@settings(max_examples=25, deadline=None)
@given(updates=updates_strategy, perm_seed=st.integers(0, 2**31))
def test_permutation_invariance(rule_name, updates, perm_seed):
    rule = RULES[rule_name]()
    perm = np.random.default_rng(perm_seed).permutation(updates.shape[0])
    out1 = rule(updates)
    out2 = rule(updates[perm])
    # 1e-5, not 1e-6: iterative rules (geomed's Weiszfeld loop) stop on
    # the last *step* size, so runs over permuted rows can land ~1e-6
    # apart even though both satisfied tol — same bound as the
    # translation-equivariance test below.
    np.testing.assert_allclose(out1, out2, atol=1e-5, rtol=1e-5)


@pytest.mark.parametrize("rule_name", sorted(RULES))
@settings(max_examples=25, deadline=None)
@given(
    updates=updates_strategy,
    shift=st.floats(-50, 50, allow_nan=False, allow_infinity=False).map(
        lambda v: round(v, 3)
    ),
)
def test_translation_equivariance(rule_name, updates, shift):
    if rule_name == "clustering":
        pytest.skip("cosine similarity is not translation equivariant")
    rule = RULES[rule_name]()
    out1 = rule(updates) + shift
    out2 = rule(updates + shift)
    np.testing.assert_allclose(out1, out2, atol=1e-5, rtol=1e-5)


@pytest.mark.parametrize(
    "rule_name", ["median", "trimmed_mean", "krum", "multikrum", "fedavg", "geomed"]
)
@settings(max_examples=25, deadline=None)
@given(updates=updates_strategy)
def test_output_in_coordinate_hull(rule_name, updates):
    """Order-statistic / convex rules stay inside the per-coordinate range."""
    rule = RULES[rule_name]()
    out = rule(updates)
    lo = updates.min(axis=0) - 1e-9
    hi = updates.max(axis=0) + 1e-9
    assert np.all(out >= lo) and np.all(out <= hi)


@pytest.mark.parametrize("rule_name", sorted(RULES))
@settings(max_examples=20, deadline=None)
@given(
    vector=hnp.arrays(
        dtype=np.float64,
        shape=st.integers(1, 8),
        elements=st.floats(-10, 10, allow_nan=False, allow_infinity=False),
    ),
    k=st.integers(4, 9),
)
def test_identical_inputs_fixpoint(rule_name, vector, k):
    rule = RULES[rule_name]()
    updates = np.tile(vector, (k, 1))
    np.testing.assert_allclose(rule(updates), vector, atol=1e-7)


@pytest.mark.parametrize("rule_name", sorted(RULES))
@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**31), perm_seed=st.integers(0, 2**31))
def test_honest_set_permutation_invariance(rule_name, seed, perm_seed):
    """Shuffling only the *honest* updates (Byzantine rows pinned at the
    tail) never changes the aggregate — order of arrival within the
    honest cluster carries no information."""
    rng = np.random.default_rng(seed)
    center = rng.standard_normal(5)
    honest = center + 0.1 * rng.standard_normal((8, 5))
    byz = center + 10.0 * rng.standard_normal((2, 5))
    perm = np.random.default_rng(perm_seed).permutation(honest.shape[0])
    rule = RULES[rule_name]()
    out1 = rule(np.vstack([honest, byz]))
    out2 = RULES[rule_name]()(np.vstack([honest[perm], byz]))
    np.testing.assert_allclose(out1, out2, atol=1e-6, rtol=1e-6)


@pytest.mark.parametrize("rule_name", ["fedavg", "median", "trimmed_mean"])
@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**31), shift=st.integers(-50, 50))
def test_exact_translation_equivariance_integer_domain(rule_name, seed, shift):
    """On small-integer inputs every sum is exact in float64, so the
    linear/order-statistic rules must be translation equivariant to the
    *bit*, not just to tolerance.  16 rows and beta=0.25 keep every
    divisor a power of two, so the divisions are exact as well."""
    rules = {
        "fedavg": FedAvg(),
        "median": Median(),
        "trimmed_mean": TrimmedMean(beta=0.25),
    }
    rng = np.random.default_rng(seed)
    updates = rng.integers(-8, 9, size=(16, 7)).astype(np.float64)
    out1 = rules[rule_name](updates + float(shift))
    out2 = rules[rule_name](updates) + float(shift)
    np.testing.assert_array_equal(out1, out2)


class TestDeliveredRetentionIndependence:
    """Aggregation results must not depend on whether the transport keeps
    its debugging buffer of delivered messages (``Channel.delivered``):
    the buffer is observability, never part of the data path."""

    @staticmethod
    def _run_round(record_deliveries, delivered_maxlen, rule_name):
        from repro.sim.engine import Simulator
        from repro.sim.latency import FixedLatency
        from repro.sim.network import Channel

        sim = Simulator()
        channel = Channel(
            sim,
            FixedLatency(1.0),
            np.random.default_rng(42),
            record_deliveries=record_deliveries,
            delivered_maxlen=delivered_maxlen,
        )
        rng = np.random.default_rng(0)
        uploads = [rng.standard_normal(6) for _ in range(8)]
        received = []
        for src, vector in enumerate(uploads):
            channel.send(
                src, 99, "model", vector, vector.nbytes,
                lambda m: received.append((m.src, m.payload)),
            )
        sim.run()
        received.sort(key=lambda item: item[0])
        stack = np.stack([vector for _, vector in received])
        return RULES[rule_name]()(stack), channel.stats.messages

    @pytest.mark.parametrize("rule_name", sorted(RULES))
    def test_aggregate_identical_across_retention_settings(self, rule_name):
        baseline, n_base = self._run_round(False, None, rule_name)
        for record, maxlen in [(True, None), (True, 3), (True, 0)]:
            out, n_msgs = self._run_round(record, maxlen, rule_name)
            np.testing.assert_array_equal(baseline, out)
            assert n_msgs == n_base


@pytest.mark.parametrize("rule_name", ["median", "trimmed_mean", "krum", "multikrum", "geomed"])
@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2**31),
    n_byz=st.integers(1, 3),
    magnitude=st.floats(1e3, 1e8),
)
def test_breakdown_resistance(rule_name, seed, n_byz, magnitude):
    """A Byzantine minority at arbitrary magnitude cannot drag the robust
    rules far from the honest cluster."""
    rng = np.random.default_rng(seed)
    center = rng.standard_normal(6)
    honest = center + 0.1 * rng.standard_normal((9, 6))
    byz = np.full((n_byz, 6), magnitude)
    updates = np.vstack([honest, byz])
    k = updates.shape[0]
    # Every rule is configured for the actual adversary count — robustness
    # guarantees are conditional on f (or beta) covering the Byzantine share.
    rule = RULES[rule_name]()
    if rule_name == "krum":
        rule = Krum(f=n_byz)
    elif rule_name == "multikrum":
        rule = MultiKrum(f=n_byz)
    elif rule_name == "trimmed_mean":
        rule = TrimmedMean(beta=n_byz / k)
    out = rule(updates)
    assert np.linalg.norm(out - center) < 5.0
