"""Tests for the observability stack (:mod:`repro.obs`).

Covers the tracer and its gating, the deterministic metrics registry,
schema validation / Chrome export, the Table-V-style run report, the
benchmark-only wall-clock profiler, and the instrumentation hooks wired
into the channel, aggregators, NN and trainer.
"""

import json
import math

import numpy as np
import pytest

from repro.aggregation import get_aggregator
from repro.faults import FaultPlan, FaultyChannel
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Profiler,
    TraceEvent,
    Tracer,
    TraceSchemaError,
    build_report,
    load_trace,
    profiling,
    render_report,
    to_chrome_trace,
    validate_event,
    write_chrome_trace,
)
from repro.obs import profile, trace
from repro.pipeline.event_run import EventDrivenRun, TimingConfig
from repro.sim.engine import Simulator
from repro.sim.latency import FixedLatency, UniformLatency
from repro.sim.network import Channel, NetworkStats
from repro.topology.tree import build_ecsm


@pytest.fixture(autouse=True)
def _tracing_off():
    """Every test starts and ends with tracing disabled."""
    trace.disable()
    yield
    trace.disable()


# ======================================================================
# metrics
# ======================================================================
class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            Counter("x").inc(-1)

    def test_snapshot(self):
        c = Counter("x")
        c.inc(4)
        assert c.snapshot() == {"type": "counter", "value": 4.0}


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge("x")
        g.set(3)
        g.set(-1.5)
        assert g.snapshot() == {"type": "gauge", "value": -1.5}


class TestHistogram:
    def test_bounds_must_be_nonempty_finite_increasing(self):
        with pytest.raises(ValueError, match="at least one"):
            Histogram("h", [])
        with pytest.raises(ValueError, match="finite"):
            Histogram("h", [1.0, math.inf])
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", [1.0, 1.0])

    def test_bucket_placement_and_overflow(self):
        h = Histogram("h", [1.0, 2.0])
        for v in (0.5, 1.0, 1.5, 99.0):
            h.observe(v)
        # v <= bound places in the first matching bucket; 99 overflows
        assert h.buckets == [2, 1, 1]
        assert h.count == 4
        assert h.total == pytest.approx(102.0)
        assert (h.min, h.max) == (0.5, 99.0)

    def test_non_finite_observation_rejected(self):
        h = Histogram("h", [1.0])
        with pytest.raises(ValueError, match="non-finite"):
            h.observe(float("nan"))

    def test_empty_snapshot_has_null_extrema(self):
        snap = Histogram("h", [1.0]).snapshot()
        assert snap["count"] == 0
        assert snap["min"] is None and snap["max"] is None


class TestMetricsRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h", [1.0]) is reg.histogram("h", [1.0])
        assert len(reg) == 2 and "a" in reg

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("a")

    def test_histogram_bounds_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("h", [1.0, 2.0])
        with pytest.raises(ValueError, match="bounds"):
            reg.histogram("h", [1.0, 3.0])

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            MetricsRegistry().counter("")

    def test_snapshot_is_name_sorted(self):
        reg = MetricsRegistry()
        reg.counter("zeta").inc()
        reg.gauge("alpha").set(1)
        assert list(reg.snapshot()) == ["alpha", "zeta"]


# ======================================================================
# tracer
# ======================================================================
class TestTracer:
    def test_instant_and_span_record(self):
        tr = Tracer()
        tr.instant("tick", "sim", 1.5, actor=3, k=2)
        tr.span("work", "compute", 1.0, 4.0, extra="x")
        assert [e.ph for e in tr.events] == ["i", "X"]
        instant, span = tr.events
        assert (instant.t, instant.actor, instant.args) == (1.5, 3, {"k": 2})
        assert (span.t, span.dur) == (1.0, 3.0)

    def test_non_finite_timestamps_are_skipped(self):
        tr = Tracer()
        tr.instant("a", "c", float("nan"))
        tr.span("b", "c", float("nan"), 2.0)
        tr.span("b", "c", 1.0, float("inf"))
        assert tr.events == []

    def test_backwards_span_is_skipped(self):
        tr = Tracer()
        tr.span("b", "c", 2.0, 1.0)
        assert tr.events == []

    def test_args_are_made_json_safe(self):
        tr = Tracer()
        tr.instant(
            "a", "c", 0.0,
            nan=float("nan"),
            np_scalar=np.int64(7),
            nested={"x": np.float64(0.5), "y": (1, 2)},
            other=object(),
        )
        args = tr.events[0].args
        assert args["nan"] is None
        assert args["np_scalar"] == 7 and isinstance(args["np_scalar"], int)
        assert args["nested"] == {"x": 0.5, "y": [1, 2]}
        assert isinstance(args["other"], str)

    def test_as_dict_omits_absent_fields(self):
        event = TraceEvent(name="a", cat="c", ph="i", t=0.0)
        assert event.as_dict() == {"name": "a", "cat": "c", "ph": "i", "t": 0.0}

    def test_to_jsonl_sorted_keys_and_trailing_newline(self):
        tr = Tracer()
        tr.span("w", "compute", 0.0, 1.0, actor=1, z=1, a=2)
        text = tr.to_jsonl()
        assert text.endswith("\n")
        obj = json.loads(text)
        keys = list(json.loads(text, object_pairs_hook=lambda p: [k for k, _ in p]))
        assert keys == sorted(keys)
        assert obj["dur"] == 1.0

    def test_empty_tracer_serialises_to_empty_string(self):
        assert Tracer().to_jsonl() == ""

    def test_identical_event_streams_are_byte_identical(self):
        def make():
            tr = Tracer()
            tr.instant("a", "c", 1.0, k=3)
            tr.span("b", "comm", 0.0, 2.0, actor=4)
            tr.metrics.counter("n").inc(2)
            tr.snapshot_metrics(2.0)
            return tr.to_jsonl()

        assert make() == make()

    def test_snapshot_metrics_emits_counter_samples(self):
        tr = Tracer()
        tr.metrics.counter("calls").inc(3)
        tr.metrics.histogram("lat", [1.0]).observe(0.5)
        tr.snapshot_metrics(7.0)
        samples = [e for e in tr.events if e.ph == "C"]
        assert [e.name for e in samples] == ["calls", "lat"]
        assert all(e.cat == "metrics" and e.t == 7.0 for e in samples)
        assert samples[0].args["value"] == 3.0

    def test_snapshot_metrics_skips_non_finite_time(self):
        tr = Tracer()
        tr.metrics.counter("calls").inc()
        tr.snapshot_metrics(float("nan"))
        assert tr.events == []

    def test_save_load_roundtrip(self, tmp_path):
        tr = Tracer()
        tr.span("w", "wait", 0.0, 1.5, actor=2, round=0)
        tr.instant("f", "fault", 1.0)
        path = tr.save(tmp_path / "t.jsonl")
        events = load_trace(path)
        assert len(events) == 2
        assert events[0]["dur"] == 1.5 and events[1]["ph"] == "i"


class TestGating:
    def test_off_by_default_in_tests(self):
        assert trace.tracer() is None
        assert not trace.enabled()

    def test_enable_disable(self):
        tr = trace.enable()
        assert trace.tracer() is tr and trace.enabled()
        trace.disable()
        assert trace.tracer() is None

    def test_enable_accepts_instance(self):
        mine = Tracer()
        assert trace.enable(mine) is mine
        assert trace.tracer() is mine

    def test_scoped_restores_previous(self):
        outer = trace.enable()
        inner = Tracer()
        with trace.scoped(inner):
            assert trace.tracer() is inner
        assert trace.tracer() is outer

    def test_traced_installs_fresh_tracer_and_saves(self, tmp_path):
        path = tmp_path / "out.jsonl"
        with trace.traced(path) as tr:
            assert trace.tracer() is tr
            tr.instant("a", "c", 0.0)
        assert trace.tracer() is None
        assert load_trace(path)[0]["name"] == "a"

    def test_traced_without_path_saves_nothing(self, tmp_path):
        with trace.traced() as tr:
            tr.instant("a", "c", 0.0)
        assert list(tmp_path.iterdir()) == []

    def test_env_trace_path_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert trace.env_trace_path() is None
        for bare in ("1", "true", "ON", "yes"):
            monkeypatch.setenv("REPRO_TRACE", bare)
            assert trace.env_trace_path() is None
        monkeypatch.setenv("REPRO_TRACE", "runs/t.jsonl")
        assert trace.env_trace_path() == __import__("pathlib").Path("runs/t.jsonl")


# ======================================================================
# export / schema validation
# ======================================================================
def _minimal(ph="i", **extra):
    obj = {"name": "a", "cat": "c", "ph": ph, "t": 0.0}
    obj.update(extra)
    return obj


class TestValidateEvent:
    def test_minimal_events_pass(self):
        validate_event(_minimal())
        validate_event(_minimal(ph="X", dur=1.0, actor=3, args={"k": 1}))
        validate_event(_minimal(ph="C", args={"value": 2.0}))

    @pytest.mark.parametrize(
        "obj, match",
        [
            ([1, 2], "JSON object"),
            (_minimal(name=""), "'name'"),
            ({"name": "a", "ph": "i", "t": 0.0}, "'cat'"),
            (_minimal(ph="B"), "'ph'"),
            (_minimal(t=True), "'t'"),
            (_minimal(t=float("nan")), "'t'"),
            (_minimal(ph="X"), "require 'dur'"),
            (_minimal(ph="X", dur=-1.0), "'dur'"),
            (_minimal(actor=True), "'actor'"),
            (_minimal(args=[1]), "'args'"),
            (_minimal(extra_field=1), "unknown fields"),
        ],
    )
    def test_schema_violations_rejected(self, obj, match):
        with pytest.raises(TraceSchemaError, match=match):
            validate_event(obj)

    def test_context_prefixes_the_error(self):
        with pytest.raises(TraceSchemaError, match=r"file\.jsonl:3"):
            validate_event(_minimal(ph="B"), context="file.jsonl:3")


class TestLoadTrace:
    def test_invalid_json_line_reports_lineno(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"name": "a", "cat": "c", "ph": "i", "t": 0}\nnot json\n')
        with pytest.raises(TraceSchemaError, match=r"bad\.jsonl:2"):
            load_trace(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('\n{"name": "a", "cat": "c", "ph": "i", "t": 0}\n\n')
        assert len(load_trace(path)) == 1


class TestChromeExport:
    def test_span_maps_to_microseconds_and_tid(self):
        out = to_chrome_trace(
            [_minimal(ph="X", dur=0.5, actor=7, args={"k": 1}, t=2.0)]
        )
        (entry,) = out["traceEvents"]
        assert entry["ts"] == pytest.approx(2e6)
        assert entry["dur"] == pytest.approx(5e5)
        assert entry["tid"] == 7 and entry["pid"] == 0
        assert entry["args"] == {"k": 1}
        assert out["displayTimeUnit"] == "ms"

    def test_instant_is_thread_scoped(self):
        (entry,) = to_chrome_trace([_minimal()])["traceEvents"]
        assert entry["s"] == "t" and entry["tid"] == 0

    def test_counter_args_flattened_to_numbers(self):
        event = _minimal(
            ph="C",
            args={"value": 2, "flag": True, "label": "x", "sub": {"mean": 0.5}},
        )
        (entry,) = to_chrome_trace([event])["traceEvents"]
        assert entry["args"] == {"value": 2.0, "sub.mean": 0.5}

    def test_accepts_trace_event_objects(self):
        event = TraceEvent(name="a", cat="c", ph="i", t=1.0)
        (entry,) = to_chrome_trace([event])["traceEvents"]
        assert entry["ts"] == pytest.approx(1e6)

    def test_write_chrome_trace_roundtrip(self, tmp_path):
        path = write_chrome_trace(tmp_path / "t.json", [_minimal()])
        data = json.loads(path.read_text())
        assert len(data["traceEvents"]) == 1


# ======================================================================
# run report
# ======================================================================
def _span(name, cat, t, dur, round_index=None):
    args = {} if round_index is None else {"round": round_index}
    return {"name": name, "cat": cat, "ph": "X", "t": t, "dur": dur, "args": args}


class TestBuildReport:
    def test_folds_spans_per_round_and_overall(self):
        events = [
            _span("local", "compute", 0.0, 2.0, round_index=0),
            _span("upload", "comm", 2.0, 1.0, round_index=0),
            _span("leader", "wait", 3.0, 4.0, round_index=1),
            _span("stray", "comm", 0.0, 0.5),  # no round -> -1 bucket
        ]
        report = build_report(events)
        assert report.n_events == 4
        assert report.by_round[0].compute == 2.0
        assert report.by_round[0].comm == 1.0
        assert report.by_round[1].wait == 4.0
        assert report.by_round[-1].comm == 0.5
        assert report.overall.total == pytest.approx(7.5)

    def test_comm_by_kind_tracks_count_total_peak(self):
        events = [
            _span("model_upload", "comm", 0.0, 1.0, round_index=0),
            _span("model_upload", "comm", 1.0, 3.0, round_index=0),
        ]
        report = build_report(events)
        count, total, peak = report.comm_by_kind["model_upload"]
        assert (count, total, peak) == (2, 4.0, 3.0)

    def test_fault_instants_counted(self):
        events = [
            {"name": "transport.drop", "cat": "fault", "ph": "i", "t": 0.0},
            {"name": "transport.drop", "cat": "fault", "ph": "i", "t": 1.0},
            {"name": "pipeline.crash", "cat": "fault", "ph": "i", "t": 2.0},
        ]
        report = build_report(events)
        assert report.fault_events == {"transport.drop": 2, "pipeline.crash": 1}

    def test_non_breakdown_categories_ignored(self):
        events = [_span("agg", "aggregation", 0.0, 1.0)]
        report = build_report(events)
        assert report.overall.total == 0.0 and report.n_events == 1

    def test_share_is_zero_on_empty_breakdown(self):
        report = build_report([])
        assert report.overall.share("wait") == 0.0


class TestRenderReport:
    def test_contains_breakdown_faults_and_counts(self):
        events = [
            _span("local", "compute", 0.0, 3.0, round_index=0),
            _span("up", "comm", 3.0, 1.0, round_index=0),
            _span("stray", "wait", 0.0, 1.0),
            {"name": "transport.drop", "cat": "fault", "ph": "i", "t": 0.0},
        ]
        text = render_report(events)
        assert "Wait / computation / communication breakdown" in text
        assert "(no round)" in text
        assert "75.0%" in text  # compute share of round 0
        assert "transport.drop" in text
        assert "4 trace events" in text

    def test_empty_trace_renders(self):
        text = render_report([])
        assert "0 trace events" in text

    def test_empty_trace_says_no_spans(self):
        # An empty trace must degrade to an explicit placeholder, not an
        # all-zero breakdown that reads like a measured result.
        text = render_report([])
        assert "no spans recorded (empty trace)" in text
        assert "Wait / computation / communication breakdown" in text

    def test_span_free_trace_reports_event_count(self):
        events = [
            {"name": "transport.drop", "cat": "fault", "ph": "i", "t": 0.0},
            {"name": "transport.drop", "cat": "fault", "ph": "i", "t": 1.0},
        ]
        text = render_report(events)
        assert "no spans recorded (2 events, none of them breakdown spans)" in text
        # The non-breakdown sections still render.
        assert "transport.drop" in text
        assert "2 trace events" in text

    def test_metrics_only_trace_degrades(self):
        tr = Tracer()
        tr.metrics.counter("agg.calls").inc(3)
        tr.snapshot_metrics(1.0)
        text = render_report(tr.events)
        assert "no spans recorded" in text
        assert "1 trace events" in text


# ======================================================================
# wall-clock profiler (benchmarks only)
# ======================================================================
class TestProfiler:
    def test_record_accumulates_exact_fold(self):
        prof = Profiler()
        with prof.record("work"):
            pass
        with prof.record("work"):
            pass
        rec = prof.records["work"]
        assert rec.count == 2
        assert rec.total >= rec.max >= rec.min >= 0.0
        assert rec.mean == pytest.approx(rec.total / 2)

    def test_record_survives_exceptions(self):
        prof = Profiler()
        with pytest.raises(RuntimeError):
            with prof.record("boom"):
                raise RuntimeError
        assert prof.records["boom"].count == 1

    def test_summary_is_name_sorted(self):
        prof = Profiler()
        with prof.record("b"):
            pass
        with prof.record("a"):
            pass
        assert list(prof.summary()) == ["a", "b"]

    def test_not_active_by_default_and_ctx_restores(self):
        assert profile.active() is None
        outer = Profiler()
        with profiling(outer) as installed:
            assert installed is outer and profile.active() is outer
            with profiling() as inner:
                assert profile.active() is inner is not outer
            assert profile.active() is outer
        assert profile.active() is None

    def test_nn_forward_backward_hooks(self, tiny_model, rng):
        x = rng.standard_normal((4, 64))
        with profiling() as prof:
            out = tiny_model.forward(x)
            tiny_model.backward(np.ones_like(out))
        assert prof.records["nn.forward"].count == 1
        assert prof.records["nn.backward"].count == 1

    def test_aggregation_hook_records_rule_name(self, rng):
        fedavg = get_aggregator("fedavg")
        matrix = rng.standard_normal((5, 8))
        with profiling() as prof:
            fedavg(matrix)
        assert prof.records["aggregate.fedavg"].count == 1

    def test_profiling_does_not_change_results(self, rng):
        fedavg = get_aggregator("fedavg")
        matrix = rng.standard_normal((5, 8))
        baseline = fedavg(matrix)
        with profiling():
            profiled = fedavg(matrix)
        np.testing.assert_array_equal(profiled, baseline)


# ======================================================================
# instrumentation hooks: aggregation + channel + faults
# ======================================================================
class TestAggregationTracing:
    def test_traced_call_emits_instant_and_counter(self, rng):
        fedavg = get_aggregator("fedavg")
        matrix = rng.standard_normal((5, 8))
        baseline = fedavg(matrix)
        with trace.traced() as tr:
            traced_out = fedavg(matrix)
        np.testing.assert_array_equal(traced_out, baseline)
        (event,) = [e for e in tr.events if e.name == "aggregate.fedavg"]
        assert event.cat == "aggregation"
        assert event.args["n"] == 5 and event.args["d"] == 8
        assert tr.metrics.counter("aggregate.fedavg.calls").value == 1.0


def _reliable_channel(seed=0, latency=0.5):
    sim = Simulator()
    channel = Channel(sim, FixedLatency(latency), np.random.default_rng(seed))
    return sim, channel


class TestChannelTracing:
    def test_delivery_emits_comm_span_with_round_from_int_payload(self):
        sim, channel = _reliable_channel()
        with trace.traced() as tr:
            channel.send(1, 2, "model_upload", 3, 100, lambda m: None)
            sim.run()
        (span,) = [e for e in tr.events if e.ph == "X"]
        assert (span.name, span.cat, span.ph) == ("model_upload", "comm", "X")
        assert span.t == 0.0 and span.dur == 0.5
        assert span.actor == 2
        assert span.args == {"src": 1, "dst": 2, "bytes": 100, "round": 3}

    def test_non_int_payload_has_no_round(self):
        sim, channel = _reliable_channel()
        with trace.traced() as tr:
            channel.send(1, 2, "m", "blob", 10, lambda m: None)
            channel.send(1, 2, "m", True, 10, lambda m: None)  # bool is not a round
            sim.run()
        assert all("round" not in e.args for e in tr.events)

    def test_untraced_delivery_emits_nothing(self):
        sim, channel = _reliable_channel()
        channel.send(1, 2, "m", 0, 10, lambda m: None)
        sim.run()  # no tracer installed: must simply not crash

    def test_delivered_message_flags(self):
        sim, channel = _reliable_channel()
        msg = channel.send(1, 2, "m", 0, 10, lambda m: None)
        assert math.isnan(msg.delivered_at) and msg.dropped is False
        sim.run()
        assert msg.delivered_at == 0.5 and msg.dropped is False

    def test_dropped_message_sets_flag_and_keeps_nan(self):
        sim = Simulator()
        plan = FaultPlan.uniform(drop_probability=1.0, max_retries=0, seed=1)
        channel = FaultyChannel(
            sim, FixedLatency(0.5), np.random.default_rng(0), plan=plan
        )
        delivered = []
        msg = channel.send(1, 2, "m", 0, 10, delivered.append)
        sim.run()
        assert delivered == []
        assert msg.dropped is True
        assert math.isnan(msg.delivered_at)

    def test_dropped_message_emits_fault_instant(self):
        sim = Simulator()
        plan = FaultPlan.uniform(drop_probability=1.0, max_retries=0, seed=1)
        channel = FaultyChannel(
            sim, FixedLatency(0.5), np.random.default_rng(0), plan=plan
        )
        with trace.traced() as tr:
            channel.send(1, 2, "m", 0, 10, lambda m: None)
            sim.run()
        names = [e.name for e in tr.events]
        assert "transport.drop" in names
        drop = tr.events[names.index("transport.drop")]
        assert drop.cat == "fault" and drop.ph == "i"

    def test_zero_rate_plan_trace_matches_reliable_channel(self):
        def run(channel_cls, **kwargs):
            sim = Simulator()
            channel = channel_cls(
                sim, FixedLatency(0.5), np.random.default_rng(7), **kwargs
            )
            with trace.traced() as tr:
                for i in range(5):
                    channel.send(0, 1, "m", i, 10, lambda m: None)
                sim.run()
            return tr.to_jsonl()

        plain = run(Channel)
        faulty = run(FaultyChannel, plan=FaultPlan())
        assert plain == faulty


class TestNetworkStats:
    def test_latency_summary_per_kind(self):
        sim, channel = _reliable_channel(latency=2.0)
        for i in range(3):
            channel.send(0, 1, "model", i, 100, lambda m: None)
        channel.send(0, 1, "flag", 0, 1, lambda m: None)
        sim.run()
        count, mean, peak = channel.stats.latency_summary("model")
        assert (count, mean, peak) == (3, 2.0, 2.0)
        assert channel.stats.delivered == 4

    def test_unknown_kind_summary_is_zero(self):
        assert NetworkStats().latency_summary("nope") == (0, 0.0, 0.0)

    def test_dropped_messages_do_not_contribute_latency(self):
        sim = Simulator()
        plan = FaultPlan.uniform(drop_probability=1.0, max_retries=0, seed=1)
        channel = FaultyChannel(
            sim, FixedLatency(0.5), np.random.default_rng(0), plan=plan
        )
        channel.send(0, 1, "m", 0, 10, lambda m: None)
        sim.run()
        assert channel.stats.messages == 1  # wire accounting still fires
        assert channel.stats.latency_summary("m") == (0, 0.0, 0.0)

    def test_summary_keeps_legacy_first_line_and_adds_latency(self):
        sim, channel = _reliable_channel(latency=1.5)
        channel.send(0, 1, "model", 0, 100, lambda m: None)
        sim.run()
        lines = channel.stats.summary().splitlines()
        assert lines[0] == "1 messages, 100 bytes"
        assert "1 delivered, latency mean 1.5000s max 1.5000s" in lines[1]

    def test_summary_without_deliveries_has_no_latency_suffix(self):
        sim, channel = _reliable_channel()
        channel.send(0, 1, "model", 0, 100, lambda m: None)
        # sim not run: sent but never delivered
        assert "latency" not in channel.stats.summary()


# ======================================================================
# end-to-end: event-driven run and trainer
# ======================================================================
def _tiny_timing():
    return TimingConfig(
        local_compute=UniformLatency(2.0, 4.0),
        partial_aggregate=FixedLatency(0.5),
        global_aggregate=FixedLatency(1.0),
        link=FixedLatency(0.1),
    )


class TestEventRunTracing:
    def test_traced_run_covers_all_breakdown_categories(self):
        hierarchy = build_ecsm(n_levels=3, cluster_size=2, n_top=2)
        run = EventDrivenRun(hierarchy, _tiny_timing(), flag_level=1, seed=3)
        with trace.traced() as tr:
            run.run(2)
        cats = {e.cat for e in tr.events if e.ph == "X"}
        assert {"compute", "comm", "wait"} <= cats
        report = build_report(tr.events)
        assert set(report.by_round) >= {0, 1}
        assert report.comm_by_kind  # per-kind latency table has rows
        # render end-to-end on a real trace
        assert "trace events" in render_report(tr.events)

    def test_traced_run_produces_schema_valid_trace(self, tmp_path):
        hierarchy = build_ecsm(n_levels=3, cluster_size=2, n_top=2)
        run = EventDrivenRun(hierarchy, _tiny_timing(), flag_level=1, seed=3)
        path = tmp_path / "run.jsonl"
        with trace.traced(path) as tr:
            run.run(1)
        events = load_trace(path)
        assert len(events) == len(tr.events)
        # Chrome export accepts the whole trace
        chrome = to_chrome_trace(events)
        assert len(chrome["traceEvents"]) == len(events)

    def test_traced_timings_match_untraced(self):
        def timings(traced):
            hierarchy = build_ecsm(n_levels=3, cluster_size=2, n_top=2)
            run = EventDrivenRun(hierarchy, _tiny_timing(), flag_level=1, seed=3)
            if traced:
                with trace.traced():
                    return run.run(2)
            return run.run(2)

        baseline = timings(False)
        traced = timings(True)
        assert len(baseline) == len(traced)
        for a, b in zip(baseline, traced):
            assert a.first_upload == b.first_upload
            assert a.global_arrival == b.global_arrival


class TestTrainerTracing:
    @pytest.fixture(scope="class")
    def traced_trainer(self):
        from test_core_trainer import default_config, small_setup

        hierarchy, datasets, model, test = small_setup()
        from repro.core.trainer import ABDHFLTrainer

        trainer = ABDHFLTrainer(
            hierarchy, datasets, model, default_config(trace=True), test, seed=0
        )
        trainer.run(2)
        return trainer

    def test_config_trace_gives_trainer_a_private_tracer(self, traced_trainer):
        tr = traced_trainer.tracer
        assert tr is not None
        # the trainer's tracer is scoped per round: off outside run_round
        assert trace.tracer() is None

    def test_round_events_and_metrics_recorded(self, traced_trainer):
        tr = traced_trainer.tracer
        names = [e.name for e in tr.events]
        assert names.count("trainer.round") == 2
        for stage in (
            "trainer.local_training",
            "trainer.partial_aggregation",
            "trainer.global_aggregation",
        ):
            assert stage in names
        assert tr.metrics.counter("trainer.rounds").value == 2.0
        samples = [e for e in tr.events if e.ph == "C"]
        assert samples, "per-round metric snapshots missing"

    def test_round_timestamps_are_round_indices(self, traced_trainer):
        rounds = [
            e.t for e in traced_trainer.tracer.events if e.name == "trainer.round"
        ]
        assert rounds == [0.0, 1.0]

    def test_consensus_and_aggregation_events_present(self, traced_trainer):
        names = [e.name for e in traced_trainer.tracer.events]
        assert any(n.startswith("consensus.") for n in names)
        assert any(n.startswith("aggregate.") for n in names)

    def test_trace_serialises_and_validates(self, traced_trainer, tmp_path):
        path = traced_trainer.tracer.save(tmp_path / "train.jsonl")
        events = load_trace(path)
        assert len(events) == len(traced_trainer.tracer.events)

    def test_trace_off_by_default(self):
        from test_core_trainer import default_config, small_setup

        hierarchy, datasets, model, test = small_setup()
        from repro.core.trainer import ABDHFLTrainer

        trainer = ABDHFLTrainer(
            hierarchy, datasets, model, default_config(), test, seed=0
        )
        assert trainer.tracer is None

    def test_traced_training_matches_untraced(self, traced_trainer):
        from test_core_trainer import default_config, small_setup

        hierarchy, datasets, model, test = small_setup()
        from repro.core.trainer import ABDHFLTrainer

        baseline = ABDHFLTrainer(
            hierarchy, datasets, model, default_config(), test, seed=0
        )
        baseline.run(2)
        np.testing.assert_array_equal(
            baseline.global_model, traced_trainer.global_model
        )
