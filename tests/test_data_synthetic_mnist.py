"""Tests for the synthetic MNIST generator."""

import numpy as np
import pytest

from repro.data.synthetic_mnist import SyntheticMNIST, digit_glyph, make_synthetic_mnist
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.model import MLP
from repro.nn.optim import SGD


class TestGlyphs:
    def test_all_digits_render(self):
        for d in range(10):
            glyph = digit_glyph(d, 12)
            assert glyph.shape == (12, 12)
            assert glyph.max() == 1.0
            assert glyph.min() == 0.0

    def test_glyphs_distinct(self):
        glyphs = [digit_glyph(d, 16) for d in range(10)]
        for i in range(10):
            for j in range(i + 1, 10):
                assert not np.array_equal(glyphs[i], glyphs[j]), (i, j)

    def test_invalid_digit(self):
        with pytest.raises(ValueError):
            digit_glyph(10, 12)

    def test_too_small_canvas(self):
        with pytest.raises(ValueError):
            digit_glyph(0, 4)


class TestRender:
    def test_shapes_and_range(self, rng):
        cfg = SyntheticMNIST(side=10)
        X = cfg.render(np.array([0, 5, 9]), rng)
        assert X.shape == (3, 100)
        assert X.min() >= 0.0 and X.max() <= 1.5

    def test_reproducible(self):
        cfg = SyntheticMNIST(side=10)
        labels = np.arange(10)
        a = cfg.render(labels, np.random.default_rng(3))
        b = cfg.render(labels, np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)

    def test_noise_applied(self):
        cfg = SyntheticMNIST(side=10, noise_sigma=0.3, max_shift=0, dropout=0.0, ink_jitter=0.0)
        X = cfg.render(np.array([8]), np.random.default_rng(0))
        clean = digit_glyph(8, 10).reshape(-1)
        assert not np.allclose(X[0], np.clip(clean, 0, 1.5))

    def test_no_perturbation_equals_glyph(self):
        cfg = SyntheticMNIST(side=10, noise_sigma=0.0, max_shift=0, dropout=0.0, ink_jitter=0.0)
        X = cfg.render(np.array([3]), np.random.default_rng(0))
        np.testing.assert_array_equal(X[0], digit_glyph(3, 10).reshape(-1))


class TestMakeDataset:
    def test_balanced_labels(self, rng):
        train, test = make_synthetic_mnist(100, 50, rng, SyntheticMNIST(side=8))
        counts = train.label_counts()
        assert counts.sum() == 100
        assert counts.max() - counts.min() <= 1

    def test_invalid_sizes(self, rng):
        with pytest.raises(ValueError):
            make_synthetic_mnist(0, 10, rng)

    def test_learnable_to_high_accuracy(self, rng):
        """The substitution contract: a small MLP must solve this task."""
        cfg = SyntheticMNIST(side=10, noise_sigma=0.25)
        train, test = make_synthetic_mnist(1500, 400, rng, cfg)
        model = MLP(100, (32,), 10, rng)
        loss_fn = SoftmaxCrossEntropy()
        opt = SGD(model, 0.5)
        for _ in range(300):
            idx = rng.choice(len(train), size=64, replace=False)
            logits = model.forward(train.X[idx], train=True)
            loss_fn.forward(logits, train.y[idx])
            model.backward(loss_fn.backward())
            opt.step()
        acc = float(np.mean(model.predict(test.X) == test.y))
        assert acc > 0.8, f"synthetic MNIST should be learnable, got {acc}"
