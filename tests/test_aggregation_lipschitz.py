"""Tests for the Kardam-style Lipschitz filter."""

import numpy as np
import pytest

from repro.aggregation import LipschitzFilter, get_aggregator


def honest_sequence(rng, k=10, d=12, rounds=5, drift=0.1):
    """Simulate honest updates that evolve smoothly across rounds."""
    base = rng.standard_normal((k, d))
    out = []
    for _ in range(rounds):
        base = base + drift * rng.standard_normal((k, d))
        out.append(base.copy())
    return out


class TestLipschitzFilter:
    def test_registered(self):
        rule = get_aggregator("lipschitz", quantile=0.8)
        assert isinstance(rule, LipschitzFilter)

    def test_first_round_fallback_median(self, rng):
        rule = LipschitzFilter(fallback="median")
        updates = rng.standard_normal((6, 4))
        np.testing.assert_allclose(rule(updates), np.median(updates, axis=0))

    def test_first_round_fallback_mean(self, rng):
        rule = LipschitzFilter(fallback="mean")
        updates = rng.standard_normal((6, 4))
        np.testing.assert_allclose(rule(updates), updates.mean(axis=0))

    def test_smooth_honest_updates_pass(self, rng):
        rule = LipschitzFilter(quantile=1.0)
        rounds = honest_sequence(rng)
        for updates in rounds:
            out = rule(updates)
        np.testing.assert_allclose(out, updates.mean(axis=0), atol=1e-9)

    def test_erratic_client_filtered(self, rng):
        """A client whose update jumps wildly between rounds is excluded."""
        rule = LipschitzFilter(quantile=0.8)
        rounds = honest_sequence(rng, k=10)
        # client 0 broadcasts an erratic vector from round 2 on
        poisoned = None
        for i, updates in enumerate(rounds):
            if i >= 2:
                updates = updates.copy()
                updates[0] = 500.0 * rng.standard_normal(updates.shape[1])
            poisoned = updates
            out = rule(updates)
        honest_mean = rounds[-1][1:].mean(axis=0)
        filtered_err = np.linalg.norm(out - honest_mean)
        unfiltered_err = np.linalg.norm(poisoned.mean(axis=0) - honest_mean)
        # the filter must remove almost all of the erratic client's pull
        assert filtered_err < 0.1 * unfiltered_err

    def test_reset_restores_fallback(self, rng):
        rule = LipschitzFilter()
        updates = rng.standard_normal((5, 3))
        rule(updates)
        rule.reset()
        np.testing.assert_allclose(rule(updates), np.median(updates, axis=0))

    def test_shape_change_triggers_fallback(self, rng):
        rule = LipschitzFilter()
        rule(rng.standard_normal((5, 3)))
        bigger = rng.standard_normal((7, 3))
        np.testing.assert_allclose(rule(bigger), np.median(bigger, axis=0))

    def test_validation(self):
        with pytest.raises(ValueError):
            LipschitzFilter(quantile=0.0)
        with pytest.raises(ValueError):
            LipschitzFilter(fallback="mode")
