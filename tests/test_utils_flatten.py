"""Tests for flat-vector parameter views."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.flatten import FlatSpec, flatten_arrays, unflatten_vector


def _arrays(rng=None):
    rng = rng or np.random.default_rng(0)
    return [
        rng.standard_normal((3, 4)),
        rng.standard_normal(7),
        rng.standard_normal((2, 2, 2)),
    ]


class TestFlatSpec:
    def test_sizes_and_offsets(self):
        spec = FlatSpec.from_arrays(_arrays())
        assert spec.sizes == (12, 7, 8)
        assert spec.offsets == (0, 12, 19)
        assert spec.total_size == 27

    def test_empty_shapes(self):
        spec = FlatSpec(shapes=())
        assert spec.total_size == 0


class TestRoundTrip:
    def test_flatten_then_unflatten(self):
        arrays = _arrays()
        spec = FlatSpec.from_arrays(arrays)
        flat = flatten_arrays(arrays)
        back = unflatten_vector(flat, spec)
        for a, b in zip(arrays, back):
            np.testing.assert_array_equal(a, b)

    def test_out_buffer_reuse(self):
        arrays = _arrays()
        buf = np.zeros(27)
        result = flatten_arrays(arrays, out=buf)
        assert result is buf

    def test_out_buffer_wrong_size(self):
        with pytest.raises(ValueError):
            flatten_arrays(_arrays(), out=np.zeros(5))

    def test_unflatten_wrong_length(self):
        spec = FlatSpec.from_arrays(_arrays())
        with pytest.raises(ValueError):
            unflatten_vector(np.zeros(5), spec)

    def test_views_share_memory(self):
        arrays = _arrays()
        spec = FlatSpec.from_arrays(arrays)
        flat = flatten_arrays(arrays)
        views = unflatten_vector(flat, spec, copy=False)
        views[0][0, 0] = 123.0
        assert flat[0] == 123.0

    def test_copies_do_not_share(self):
        arrays = _arrays()
        spec = FlatSpec.from_arrays(arrays)
        flat = flatten_arrays(arrays)
        copies = unflatten_vector(flat, spec, copy=True)
        copies[0][0, 0] = 123.0
        assert flat[0] != 123.0


@settings(max_examples=50, deadline=None)
@given(
    shapes=st.lists(
        st.lists(st.integers(1, 5), min_size=1, max_size=3), min_size=1, max_size=4
    )
)
def test_round_trip_property(shapes):
    rng = np.random.default_rng(1)
    arrays = [rng.standard_normal(tuple(s)) for s in shapes]
    spec = FlatSpec.from_arrays(arrays)
    flat = flatten_arrays(arrays)
    assert flat.shape == (spec.total_size,)
    back = unflatten_vector(flat, spec)
    for a, b in zip(arrays, back):
        np.testing.assert_array_equal(a, b)
