"""Unit tests for the deterministic parallel backend (:mod:`repro.parallel`).

Fast tier: worker-count resolution and gating, the serial (``workers=1``)
pass-through contract of :func:`parallel_map`, and the defence-matrix
parameterisation fix (:func:`defence_options_for`) that the sweep surface
carries.  The multi-process bit-identity regressions live in
``test_parallel_determinism.py`` (marked ``slow``).
"""

from __future__ import annotations

import pytest

from repro.core.config import ABDHFLConfig
from repro.experiments import matrix
from repro.experiments.matrix import (
    DEFENCE_OPTIONS,
    MatrixCell,
    breakdown_curve,
    defence_options_for,
    run_defence_matrix,
)
from repro.obs import Tracer, trace
from repro.parallel import (
    ENV_VAR,
    ParallelConfig,
    env_workers,
    parallel_map,
    resolve_workers,
)


@pytest.fixture(autouse=True)
def _no_ambient_workers(monkeypatch):
    """Resolution tests must not inherit a REPRO_WORKERS from the shell."""
    monkeypatch.delenv(ENV_VAR, raising=False)


# ======================================================================
# gating: explicit > REPRO_WORKERS > serial
# ======================================================================
class TestResolveWorkers:
    def test_default_is_serial(self):
        assert resolve_workers() == 1
        assert env_workers() is None

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "8")
        assert resolve_workers(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "4")
        assert env_workers() == 4
        assert resolve_workers() == 4

    def test_env_auto_is_at_least_one(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "auto")
        assert env_workers() >= 1

    def test_blank_env_counts_as_unset(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "   ")
        assert env_workers() is None

    @pytest.mark.parametrize("raw", ["0", "-2", "2.5", "many"])
    def test_invalid_env_rejected(self, monkeypatch, raw):
        monkeypatch.setenv(ENV_VAR, raw)
        with pytest.raises(ValueError):
            env_workers()

    def test_invalid_explicit_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            resolve_workers(0)


class TestParallelConfig:
    def test_none_defers_to_env_then_serial(self, monkeypatch):
        assert ParallelConfig().resolved() == 1
        monkeypatch.setenv(ENV_VAR, "6")
        assert ParallelConfig().resolved() == 6

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "6")
        assert ParallelConfig(workers=2).resolved() == 2

    def test_invalid_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            ParallelConfig(workers=0)

    def test_abdhfl_config_validates_workers(self):
        assert ABDHFLConfig(workers=2).workers == 2
        with pytest.raises(ValueError, match="workers"):
            ABDHFLConfig(workers=0)


# ======================================================================
# parallel_map: the workers=1 serial contract
# ======================================================================
class TestParallelMapSerial:
    def test_matches_list_comprehension(self):
        items = list(range(7))
        assert parallel_map(lambda x: x * x, items) == [x * x for x in items]

    def test_closures_allowed_in_serial_mode(self):
        # Serial mode never pickles, so non-importable callables are fine.
        offset = 10
        assert parallel_map(lambda x: x + offset, [1, 2], workers=1) == [11, 12]

    def test_empty_items(self):
        assert parallel_map(str, [], workers=1) == []

    def test_worker_count_capped_by_item_count(self):
        # 5 workers over 1 item degenerates to the serial path: a lambda
        # would fail to pickle if a pool were (pointlessly) spawned.
        assert parallel_map(lambda x: -x, [3], workers=5) == [-3]

    def test_serial_tasks_replay_into_ambient_tracer(self):
        def traced_task(x: int) -> int:
            tr = trace.tracer()
            assert tr is not None
            tr.instant(f"task.{x}", "compute", t=float(x))
            return x

        with trace.scoped(Tracer()) as ambient:
            out = parallel_map(traced_task, [2, 0, 1], workers=1)
        assert out == [2, 0, 1]
        # Events arrive in input order — the same merged order the
        # multi-process path produces.
        assert [e.name for e in ambient.events] == ["task.2", "task.0", "task.1"]


# ======================================================================
# defence-matrix parameterisation (the hard-coded-25% bugfix)
# ======================================================================
class TestDefenceOptionsFor:
    def test_trimmed_mean_tracks_fraction(self):
        assert defence_options_for("trimmed_mean", 0.10) == {"beta": 0.10}
        assert defence_options_for("trimmed_mean", 0.40) == {"beta": 0.40}

    def test_trimmed_mean_beta_capped_below_half(self):
        assert defence_options_for("trimmed_mean", 0.49) == {"beta": 0.49}
        assert defence_options_for("trimmed_mean", 0.65) == {"beta": 0.49}

    def test_krum_family_tracks_fraction(self):
        for defence in ("krum", "multikrum"):
            assert defence_options_for(defence, 0.10) == {
                "byzantine_fraction": 0.10
            }
            assert defence_options_for(defence, 0.40) == {
                "byzantine_fraction": 0.40
            }

    def test_fraction_free_rules_get_none(self):
        for defence in ("fedavg", "median", "geomed", "centered_clipping"):
            assert defence_options_for(defence, 0.40) is None

    def test_legacy_table_is_the_25_percent_view(self):
        assert DEFENCE_OPTIONS == {
            "trimmed_mean": {"beta": 0.25},
            "krum": {"byzantine_fraction": 0.25},
            "multikrum": {"byzantine_fraction": 0.25},
        }


class TestMatrixUsesDerivedOptions:
    @pytest.mark.parametrize("fraction", [0.10, 0.40])
    def test_run_defence_matrix_parameterises_for_fraction(
        self, monkeypatch, fraction
    ):
        """Regression: cells at 10% / 40% must configure the defences for
        that fraction, not the canonical 25% the old table hard-coded."""
        seen: dict[str, dict] = {}
        real = matrix.get_aggregator

        def recording(name: str, **options):
            seen[name] = dict(options)
            return real(name, **options)

        monkeypatch.setattr(matrix, "get_aggregator", recording)
        cells = run_defence_matrix(
            defences=("trimmed_mean", "krum", "median"),
            attacks=("sign_flip",),
            byzantine_fraction=fraction,
            n_trials=1,
        )
        assert seen["trimmed_mean"] == {"beta": fraction}
        assert seen["krum"] == {"byzantine_fraction": fraction}
        assert seen["median"] == {}
        assert [c.byzantine_fraction for c in cells] == [fraction] * 3

    def test_breakdown_curve_reparameterises_along_the_axis(self, monkeypatch):
        betas: list[float] = []
        real = matrix.get_aggregator

        def recording(name: str, **options):
            if name == "trimmed_mean":
                betas.append(options["beta"])
            return real(name, **options)

        monkeypatch.setattr(matrix, "get_aggregator", recording)
        cells = breakdown_curve(
            "trimmed_mean", "sign_flip", fractions=(0.1, 0.3), n_trials=1
        )
        assert betas == [0.1, 0.3]
        assert [c.attack for c in cells] == ["sign_flip", "sign_flip"]

    def test_breakdown_curve_rejects_untrimmable_fractions(self):
        with pytest.raises(ValueError, match=r"\[0, 0.5\)"):
            breakdown_curve("median", "sign_flip", fractions=(0.5,))

    def test_cells_are_plain_dataclasses(self):
        cell = MatrixCell("median", "sign_flip", 0.25, 1.0)
        assert (cell.defence, cell.attack) == ("median", "sign_flip")
