"""Tests for deterministic seeding."""

import numpy as np
import pytest

from repro.utils.seeding import (
    SeedSequenceFactory,
    derive_seed,
    iter_run_seeds,
    spawn_rngs,
)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)

    def test_path_sensitivity(self):
        assert derive_seed(42, "a", 1) != derive_seed(42, "a", 2)
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_root_sensitivity(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_string_vs_int_paths_differ(self):
        assert derive_seed(7, "1") != derive_seed(7, 1)

    def test_non_negative_63bit(self):
        for seed in (0, 1, 2**40, 2**62):
            value = derive_seed(seed, "component", 3)
            assert 0 <= value < 2**63

    def test_order_matters(self):
        assert derive_seed(5, "a", "b") != derive_seed(5, "b", "a")


class TestSeedSequenceFactory:
    def test_rejects_negative_root(self):
        with pytest.raises(ValueError):
            SeedSequenceFactory(-1)

    def test_generator_reproducible(self):
        a = SeedSequenceFactory(99).generator("client", 3)
        b = SeedSequenceFactory(99).generator("client", 3)
        assert a.random() == b.random()

    def test_generators_independent(self):
        f = SeedSequenceFactory(99)
        g0 = f.generator("client", 0)
        g1 = f.generator("client", 1)
        assert not np.allclose(g0.random(100), g1.random(100))

    def test_child_factory_consistent(self):
        f = SeedSequenceFactory(7)
        direct = f.seed("sub", "leaf")
        via_child = f.child("sub").seed("leaf")
        assert direct == via_child


class TestSpawnHelpers:
    def test_spawn_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_spawned_streams_differ(self):
        gens = spawn_rngs(0, 3)
        draws = [g.random(50).tolist() for g in gens]
        assert draws[0] != draws[1] != draws[2]

    def test_run_seeds_stable_and_distinct(self):
        seeds1 = list(iter_run_seeds(11, 5))
        seeds2 = list(iter_run_seeds(11, 5))
        assert seeds1 == seeds2
        assert len(set(seeds1)) == 5
