"""Scenario-spec contract: round-trip identity, path-named validation
errors, deterministic grid expansion, and the single-source-of-truth
import identity for defence option derivation."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.experiments import matrix
from repro.experiments.setup import ExperimentConfig
from repro.faults.plan import FaultPlan, LinkFaults
from repro.scenario import (
    FaultSpec,
    ScenarioSpec,
    accuracy_spec,
    dumps_toml,
    expand_cells,
    load_shipped_spec,
    loads_scenario,
    matrix_spec,
    shipped_spec_names,
)
from repro.scenario import options as scenario_options
from repro.utils.seeding import derive_seed

# ----------------------------------------------------------------------
# seeded spec generator for property-style round-trip tests
# ----------------------------------------------------------------------
DEFENCES = ("fedavg", "median", "trimmed_mean", "krum", "multikrum", "geomed")
MODEL_ATTACKS = ("none", "sign_flip", "gaussian_noise", "alie", "ipm", "scaling")
DATA_ATTACKS = ("none", "type1", "type2", "label_flip", "backdoor")


def random_spec(rng: np.random.Generator) -> ScenarioSpec:
    """One random-but-valid spec of a random kind."""
    kind = rng.choice(["accuracy_grid", "defence_matrix", "breakdown_curve"])
    seed = int(rng.integers(0, 10_000))
    seed_policy = str(rng.choice(["shared", "derived"]))
    if kind == "accuracy_grid":
        return accuracy_spec(
            name=f"acc-{seed}",
            fractions=tuple(
                sorted(float(round(f, 3)) for f in rng.uniform(0, 0.99, 3))
            ),
            distributions=("iid", "noniid")[: int(rng.integers(1, 3))],
            attacks=tuple(
                rng.choice(DATA_ATTACKS, size=int(rng.integers(1, 3)), replace=False)
            ),
            n_runs=int(rng.integers(1, 4)),
            seed=seed,
            seed_policy=seed_policy,
        )
    n_defences = 1 if kind == "breakdown_curve" else int(rng.integers(1, 4))
    n_attacks = 1 if kind == "breakdown_curve" else int(rng.integers(1, 4))
    use_acs = bool(rng.integers(0, 2))
    return matrix_spec(
        name=f"grad-{seed}",
        kind=kind,
        defences=tuple(
            rng.choice(DEFENCES, size=n_defences, replace=False)
        ),
        attacks=tuple(
            rng.choice(MODEL_ATTACKS, size=n_attacks, replace=False)
        ),
        fractions=tuple(
            sorted(float(round(f, 3)) for f in rng.uniform(0, 0.49, 2))
        ),
        seed=seed,
        seed_policy=seed_policy,
        n_total=int(rng.integers(4, 30)),
        dim=int(rng.integers(2, 64)),
        n_trials=int(rng.integers(1, 8)),
        consensus="acs" if use_acs else None,
        consensus_adversary=(
            str(rng.choice(["none", "equivocate", "withhold"])) if use_acs else "none"
        ),
        faults=(
            FaultSpec(seed=seed, drop_probability=0.05) if use_acs else None
        ),
    )


class TestRoundTrip:
    @pytest.mark.parametrize("case", range(20))
    def test_dataclass_toml_dataclass_is_identity(self, case):
        rng = np.random.default_rng(1000 + case)
        spec = random_spec(rng)
        assert loads_scenario(dumps_toml(spec.to_dict())) == spec

    @pytest.mark.parametrize("case", range(20))
    def test_dict_round_trip_is_identity(self, case):
        rng = np.random.default_rng(2000 + case)
        spec = random_spec(rng)
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_toml_integers_read_back_as_fractions(self):
        # TOML writes 0.0 as "0.0"; an author writing "0" must get the
        # same spec (int -> float coercion in from_dict).
        spec = loads_scenario(
            'name = "t"\nkind = "breakdown_curve"\n'
            'defences = ["median"]\nattacks = ["sign_flip"]\n'
            "fractions = [0, 0.2]\n"
        )
        assert spec.fractions == (0.0, 0.2)

    def test_shipped_specs_all_round_trip(self):
        names = shipped_spec_names()
        assert set(names) >= {
            "table5",
            "defence_matrix",
            "defence_matrix_acs",
            "breakdown_krum_alie",
            "smoke",
        }
        for name in names:
            spec = load_shipped_spec(name)
            assert loads_scenario(dumps_toml(spec.to_dict())) == spec

    def test_fault_spec_round_trips_through_plan(self):
        fs = FaultSpec(seed=11, drop_probability=0.05, reorder_jitter=1.5)
        assert FaultSpec.from_plan(fs.to_plan()) == fs

    def test_non_uniform_plan_rejected(self):
        plan = FaultPlan(per_link={(0, 1): LinkFaults(drop_probability=0.5)})
        with pytest.raises(ValueError, match="faults.*uniform"):
            FaultSpec.from_plan(plan)


class TestValidationNamesThePath:
    def test_unknown_top_level_key(self):
        with pytest.raises(ValueError, match="wibble"):
            loads_scenario(
                'name = "x"\nkind = "defence_matrix"\n'
                'defences = ["median"]\nattacks = ["sign_flip"]\n'
                "fractions = [0.2]\nwibble = 3\n"
            )

    def test_unknown_nested_key_names_the_table(self):
        with pytest.raises(ValueError, match=r"estimation\.wobble"):
            loads_scenario(
                'name = "x"\nkind = "defence_matrix"\n'
                'defences = ["median"]\nattacks = ["sign_flip"]\n'
                "fractions = [0.2]\n[estimation]\nwobble = 3\n"
            )

    def test_bad_kind_enum(self):
        with pytest.raises(ValueError, match="kind.*sweep_matrix"):
            ScenarioSpec(name="x", kind="sweep_matrix").validate()

    def test_bad_defence_names_index(self):
        with pytest.raises(ValueError, match=r"defences\[1\].*meen"):
            matrix_spec(
                defences=("median", "trimmed_meen"),
                attacks=("sign_flip",),
                fractions=(0.2,),
            )

    def test_bad_attack_names_index(self):
        with pytest.raises(ValueError, match=r"attacks\[0\].*gaussian"):
            matrix_spec(
                defences=("median",),
                attacks=("gaussian", "sign_flip"),
                fractions=(0.2,),
            )

    def test_gradient_fraction_at_half_rejected_with_path(self):
        with pytest.raises(ValueError, match=r"fractions\[1\].*\[0, 0.5\)"):
            matrix_spec(
                defences=("median",),
                attacks=("sign_flip",),
                fractions=(0.2, 0.5),
            )

    def test_accuracy_fraction_past_paper_bound_allowed(self):
        spec = accuracy_spec(fractions=(0.578, 0.65))
        assert spec.fractions == (0.578, 0.65)
        with pytest.raises(ValueError, match=r"fractions\[0\]"):
            accuracy_spec(fractions=(1.0,))

    def test_bad_consensus_backend(self):
        with pytest.raises(ValueError, match="consensus.*raft"):
            matrix_spec(
                defences=("median",),
                attacks=("sign_flip",),
                fractions=(0.2,),
                consensus="raft",
            )

    def test_adversary_requires_acs(self):
        with pytest.raises(ValueError, match="consensus_adversary"):
            matrix_spec(
                defences=("median",),
                attacks=("sign_flip",),
                fractions=(0.2,),
                consensus="voting",
                consensus_adversary="equivocate",
            )

    def test_faults_require_acs(self):
        with pytest.raises(ValueError, match="faults"):
            matrix_spec(
                defences=("median",),
                attacks=("sign_flip",),
                fractions=(0.2,),
                faults=FaultSpec(drop_probability=0.1),
            )

    def test_kind_irrelevant_fields_rejected(self):
        # a gradient-kind field on an accuracy grid names itself
        spec = dataclasses.replace(
            accuracy_spec(fractions=(0.2,)), drop_fraction=0.1
        )
        with pytest.raises(ValueError, match="drop_fraction"):
            spec.validate()

    def test_bad_seed_policy(self):
        with pytest.raises(ValueError, match="seed_policy"):
            matrix_spec(
                defences=("median",),
                attacks=("sign_flip",),
                fractions=(0.2,),
                seed_policy="random",
            )

    def test_breakdown_needs_single_pair(self):
        with pytest.raises(ValueError, match="defences"):
            matrix_spec(
                kind="breakdown_curve",
                defences=("median", "krum"),
                attacks=("sign_flip",),
                fractions=(0.2,),
            )


class TestGridExpansion:
    def test_cell_count_and_ordering_accuracy(self):
        spec = accuracy_spec(
            fractions=(0.0, 0.3),
            distributions=("iid", "noniid"),
            attacks=("type1", "type2"),
        )
        cells = expand_cells(spec)
        assert len(cells) == 8
        assert [c.index for c in cells] == list(range(8))
        # paper row order: distribution-major, then attack, then fraction
        assert [(c.distribution, c.attack, c.fraction) for c in cells[:4]] == [
            ("iid", "type1", 0.0),
            ("iid", "type1", 0.3),
            ("iid", "type2", 0.0),
            ("iid", "type2", 0.3),
        ]

    def test_cell_ordering_matrix_matches_legacy(self):
        spec = matrix_spec(
            defences=("median", "krum"),
            attacks=("sign_flip", "ipm"),
            fractions=(0.25,),
        )
        assert [(c.defence, c.attack) for c in expand_cells(spec)] == [
            ("median", "sign_flip"),
            ("median", "ipm"),
            ("krum", "sign_flip"),
            ("krum", "ipm"),
        ]

    def test_expansion_is_deterministic(self):
        spec = matrix_spec(
            defences=("median", "krum"),
            attacks=("sign_flip",),
            fractions=(0.1, 0.3),
        )
        assert expand_cells(spec) == expand_cells(spec)

    def test_shared_policy_hands_every_cell_the_root_seed(self):
        spec = matrix_spec(
            defences=("median", "krum"),
            attacks=("sign_flip",),
            fractions=(0.2,),
            seed=77,
        )
        assert [c.seed for c in expand_cells(spec)] == [77, 77]

    def test_derived_policy_uses_derive_seed(self):
        spec = matrix_spec(
            defences=("median", "krum"),
            attacks=("sign_flip",),
            fractions=(0.2,),
            seed=77,
            seed_policy="derived",
        )
        cells = expand_cells(spec)
        assert [c.seed for c in cells] == [
            derive_seed(77, "cell", 0),
            derive_seed(77, "cell", 1),
        ]
        assert len({c.seed for c in cells}) == 2


class TestSingleSourceOfTruth:
    def test_matrix_imports_scenario_defence_options(self):
        # The legacy module must re-export the scenario layer's function
        # object itself — import identity means the two can never diverge.
        assert matrix.defence_options_for is scenario_options.defence_options_for

    def test_legacy_options_table_derives_from_it(self):
        assert matrix.DEFENCE_OPTIONS == {
            "trimmed_mean": {"beta": 0.25},
            "krum": {"byzantine_fraction": 0.25},
            "multikrum": {"byzantine_fraction": 0.25},
        }


class TestBuilders:
    def test_accuracy_spec_reproduces_config(self):
        cfg = ExperimentConfig(n_levels=2, n_rounds=3, hidden=(8,), seed=9)
        spec = accuracy_spec(cfg, fractions=(0.2,))
        rebuilt = spec.base_experiment_config()
        # per-cell fields are grid concerns; everything else survives
        assert rebuilt == dataclasses.replace(
            cfg,
            iid=True,
            attack="type1",
            malicious_fraction=0.0,
            partial_aggregator="multikrum",
            partial_options={"byzantine_fraction": 0.25},
        )

    def test_matrix_spec_accepts_legacy_fault_plan(self):
        plan = FaultPlan.uniform(drop_probability=0.05, seed=11)
        spec = matrix_spec(
            defences=("median",),
            attacks=("sign_flip",),
            fractions=(0.2,),
            consensus="acs",
            fault_plan=plan,
        )
        assert spec.faults == FaultSpec(seed=11, drop_probability=0.05)
        assert spec.fault_plan() == plan
