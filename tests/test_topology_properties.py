"""Property-based tests for the topology theorems and builders."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.analysis import (
    TwoTypeTree,
    max_byzantine_fraction,
    nodes_at_level,
    type1_count,
)
from repro.topology.tree import assign_byzantine, build_ecsm


@settings(max_examples=30, deadline=None)
@given(
    m=st.integers(2, 5),
    k=st.integers(0, 5),
    depth=st.integers(0, 4),
)
def test_theorem1_exact_on_generated_trees(m, k, depth):
    """For every realisable p = k/m, brute-force counts match (pm)^l."""
    if k > m:
        k = m
    p = k / m
    tree = TwoTypeTree.generate(m=m, p=p, depth=depth)
    for level, count in enumerate(tree.type1_counts()):
        assert count == round(type1_count(p, m, level))


@settings(max_examples=30, deadline=None)
@given(
    gamma1=st.floats(0, 1, allow_nan=False),
    gamma2=st.floats(0, 0.99, allow_nan=False),
    level=st.integers(0, 10),
)
def test_theorem2_bounds_are_valid_fractions(gamma1, gamma2, level):
    frac = max_byzantine_fraction(gamma1, gamma2, level)
    assert 0.0 <= frac <= 1.0
    # monotone in level (Corollary 2)
    assert frac <= max_byzantine_fraction(gamma1, gamma2, level + 1) + 1e-12


@settings(max_examples=20, deadline=None)
@given(
    n_levels=st.integers(2, 4),
    cluster_size=st.integers(2, 4),
    n_top=st.integers(1, 4),
)
def test_ecsm_structure_counts(n_levels, cluster_size, n_top):
    h = build_ecsm(n_levels=n_levels, cluster_size=cluster_size, n_top=n_top)
    # Corollary 1: level l has N_t * m^l nodes
    for level in range(1, n_levels):
        total = sum(c.size for c in h.clusters_at(level))
        assert total == nodes_at_level(n_top, cluster_size, level)
    # descendants of the top partition the bottom exactly
    all_desc = sorted(
        d
        for member in h.top_cluster.members
        for d in h.descendants(h.led_cluster(member, 1))
    )
    assert all_desc == sorted(h.bottom_clients())


@settings(max_examples=20, deadline=None)
@given(
    fraction=st.floats(0, 1, allow_nan=False),
    seed=st.integers(0, 1000),
    placement=st.sampled_from(["random", "prefix", "spread"]),
)
def test_byzantine_assignment_counts(fraction, seed, placement):
    h = build_ecsm(n_levels=3, cluster_size=3, n_top=3)
    rng = np.random.default_rng(seed)
    byz = assign_byzantine(h, fraction, rng, placement=placement)
    n = len(h.bottom_clients())
    assert len(byz) == int(round(fraction * n))
    assert len(set(byz)) == len(byz)
    assert all(0 <= d < n for d in byz)
