"""Property-based tests for consensus invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consensus import (
    ApproximateAgreement,
    CommitteeConsensus,
    PBFTConsensus,
    PoSValidation,
    VotingConsensus,
)
from repro.consensus.async_bft import ACSConsensus


def proposals_from(seed: int, n: int, d: int, spread: float) -> np.ndarray:
    rng = np.random.default_rng(seed)
    center = rng.standard_normal(d)
    return center + spread * rng.standard_normal((n, d))


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2**31),
    n=st.integers(3, 9),
    d=st.integers(1, 8),
    spread=st.floats(0.01, 5.0),
)
def test_voting_output_in_hull(seed, n, d, spread):
    """The agreed value is a convex combination of accepted proposals, so
    it lies inside the coordinate-wise hull of the inputs."""
    proposals = proposals_from(seed, n, d, spread)
    result = VotingConsensus().agree(proposals, rng=np.random.default_rng(seed))
    lo = proposals.min(axis=0) - 1e-9
    hi = proposals.max(axis=0) + 1e-9
    assert np.all(result.value >= lo) and np.all(result.value <= hi)
    assert result.accepted.any()


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2**31),
    n=st.integers(4, 10),
    n_byz=st.integers(0, 3),
)
def test_approx_agreement_validity(seed, n, n_byz):
    """Validity: the agreed vector stays inside the honest inputs'
    coordinate range for any admissible (n, f)."""
    if n <= 3 * n_byz:
        return  # outside the protocol's precondition
    rng = np.random.default_rng(seed)
    proposals = rng.standard_normal((n, 4)) * 3
    mask = np.zeros(n, dtype=bool)
    mask[:n_byz] = True
    honest = proposals[~mask]
    result = ApproximateAgreement(epsilon=1e-5, f=n_byz).agree(
        proposals, byzantine_mask=mask, rng=rng
    )
    lo = honest.min(axis=0) - 1e-6
    hi = honest.max(axis=0) + 1e-6
    assert np.all(result.value >= lo) and np.all(result.value <= hi)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2**31),
    n=st.integers(4, 10),
    n_byz=st.integers(0, 9),
)
def test_pbft_safety_precondition(seed, n, n_byz):
    """PBFT accepts exactly the f < n/3 regimes and rejects the rest."""
    n_byz = min(n_byz, n)
    rng = np.random.default_rng(seed)
    proposals = rng.standard_normal((n, 3))
    mask = np.zeros(n, dtype=bool)
    mask[:n_byz] = True
    protocol = PBFTConsensus()
    if 3 * n_byz >= n and n > 1:
        with pytest.raises(ValueError):
            protocol.agree(proposals, byzantine_mask=mask, rng=rng)
    else:
        result = protocol.agree(proposals, byzantine_mask=mask, rng=rng)
        assert np.isfinite(result.value).all()


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**31))
def test_voting_deterministic_given_rng(seed):
    proposals = proposals_from(seed, 5, 6, 1.0)
    r1 = VotingConsensus().agree(proposals, rng=np.random.default_rng(seed))
    r2 = VotingConsensus().agree(proposals, rng=np.random.default_rng(seed))
    np.testing.assert_array_equal(r1.value, r2.value)
    np.testing.assert_array_equal(r1.accepted, r2.accepted)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2**31),
    n=st.integers(3, 9),
    committee_size=st.integers(1, 5),
)
def test_committee_output_in_hull(seed, n, committee_size):
    """The committee's agreed value is a convex combination of accepted
    proposals, whatever committee the rng samples."""
    proposals = proposals_from(seed, n, 4, 1.0)
    result = CommitteeConsensus(committee_size=committee_size).agree(
        proposals, rng=np.random.default_rng(seed)
    )
    lo = proposals.min(axis=0) - 1e-9
    hi = proposals.max(axis=0) + 1e-9
    assert np.all(result.value >= lo) and np.all(result.value <= hi)
    assert result.accepted.any()
    committee = result.info["committee"]
    assert len(committee) == min(committee_size, n)
    assert np.all((committee >= 0) & (committee < n))


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(0, 2**31), n=st.integers(4, 6))
def test_acs_deterministic_and_in_hull(seed, n):
    """ACS over the async simulator: same seed => byte-identical result,
    and the decided value stays inside the proposals' hull."""
    proposals = proposals_from(seed, n, 3, 1.0)
    r1 = ACSConsensus().agree(proposals, rng=np.random.default_rng(seed))
    r2 = ACSConsensus().agree(proposals, rng=np.random.default_rng(seed))
    np.testing.assert_array_equal(r1.value, r2.value)
    np.testing.assert_array_equal(r1.accepted, r2.accepted)
    lo = proposals.min(axis=0) - 1e-9
    hi = proposals.max(axis=0) + 1e-9
    assert np.all(r1.value >= lo) and np.all(r1.value <= hi)
    assert r1.accepted.any()


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 2**31),
    rounds=st.integers(1, 4),
)
def test_pos_stake_stays_normalised(seed, rounds):
    """Slashing never destroys the stake pool: total stays ~n."""
    protocol = PoSValidation()
    rng = np.random.default_rng(seed)
    proposals = proposals_from(seed, 6, 4, 1.0)
    mask = np.zeros(6, dtype=bool)
    mask[0] = True
    for _ in range(rounds):
        result = protocol.agree(proposals, byzantine_mask=mask, rng=rng)
    stake = result.info["stake"]
    assert stake.shape == (6,)
    np.testing.assert_allclose(stake.sum(), 6.0, rtol=1e-9)
    assert (stake >= 0).all()
