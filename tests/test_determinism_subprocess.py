"""Cross-process determinism regression for the fast aggregation path.

The vectorised kernels must not introduce any run-to-run nondeterminism
(thread-count-dependent reductions, hash-ordered iteration, uninitialised
memory).  Two *fresh* interpreter processes running the same 3-round
fault-injected training therefore have to produce byte-identical
flattened global models — compared by hash, so the child ships one line
of output, not megabytes of parameters.

Marked ``slow``: each test trains in two subprocesses.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys

import pytest

SRC = str(pathlib.Path(__file__).resolve().parents[1] / "src")

TRAINER_CHILD = """
import hashlib
import numpy as np
from repro.core.config import ABDHFLConfig, LevelAggregation, TrainingConfig
from repro.core.trainer import ABDHFLTrainer
from repro.data.partition import iid_partition
from repro.data.synthetic_mnist import SyntheticMNIST, make_synthetic_mnist
from repro.faults import FaultPlan
from repro.nn.model import MLP
from repro.topology.tree import build_ecsm
from repro.utils.seeding import SeedSequenceFactory

seeds = SeedSequenceFactory(0)
hierarchy = build_ecsm(n_levels=3, cluster_size=2, n_top=2)
n_clients = len(hierarchy.bottom_clients())
train, test = make_synthetic_mnist(
    n_clients * 80, 300, seeds.generator("data"),
    SyntheticMNIST(side=8, noise_sigma=0.15),
)
partition = iid_partition(train, n_clients, seeds.generator("part"))
datasets = dict(enumerate(partition.shards))
model = MLP(64, (16,), 10, seeds.generator("init"))
cfg = ABDHFLConfig(
    training=TrainingConfig(local_iterations=8, batch_size=16, learning_rate=0.8),
    default_intermediate=LevelAggregation("bra", "multikrum"),
    default_top=LevelAggregation("cba", "voting"),
)
plan = FaultPlan.uniform(drop_probability=0.15, seed=4, max_retries=1)
trainer = ABDHFLTrainer(
    hierarchy, datasets, model, cfg, test, seed=0, fault_plan=plan
)
records = trainer.run(3)
digest = hashlib.sha256()
digest.update(
    np.ascontiguousarray(trainer.global_model, dtype=np.float64).tobytes()
)
for r in records:
    digest.update(np.float64(r.test_accuracy).tobytes())
    digest.update(np.float64(r.test_loss).tobytes())
print(digest.hexdigest())
"""

EVENT_RUN_CHILD = """
import hashlib
import numpy as np
from repro.faults import FaultPlan
from repro.pipeline.event_run import EventDrivenRun, TimingConfig
from repro.sim.latency import FixedLatency, UniformLatency
from repro.topology.tree import build_ecsm

cfg = TimingConfig(
    local_compute=UniformLatency(8.0, 12.0),
    partial_aggregate=FixedLatency(1.0),
    global_aggregate=FixedLatency(5.0),
    link=UniformLatency(0.05, 0.2),
)
hierarchy = build_ecsm(n_levels=3, cluster_size=4, n_top=4)
plan = FaultPlan.uniform(drop_probability=0.10, seed=5, max_retries=1,
                         leader_timeout=20.0)
run = EventDrivenRun(hierarchy, cfg, flag_level=1, seed=3, fault_plan=plan)
timings = run.run(3)
digest = hashlib.sha256()
for t in timings:
    for value in (t.round_index, t.cluster_index):
        digest.update(np.int64(value).tobytes())
    for value in (t.first_upload, t.flag_arrival, t.global_arrival):
        digest.update(np.float64(value).tobytes())
print(digest.hexdigest())
"""


def _run_child(
    script: str,
    sanitize: bool = False,
    trace: str | None = None,
    workers: int | None = None,
) -> str:
    env = os.environ.copy()
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = SRC + (os.pathsep + existing if existing else "")
    # Different hash seeds between the two runs would expose any reliance
    # on set/dict iteration order.
    env.pop("PYTHONHASHSEED", None)
    env.pop("REPRO_SANITIZE", None)
    env.pop("REPRO_TRACE", None)
    env.pop("REPRO_AUDIT", None)
    env.pop("REPRO_WORKERS", None)
    if sanitize:
        env["REPRO_SANITIZE"] = "1"
    if trace is not None:
        env["REPRO_TRACE"] = trace
    if workers is not None:
        env["REPRO_WORKERS"] = str(workers)
    proc = subprocess.run(
        [sys.executable, "-c", script],
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    lines = proc.stdout.strip().splitlines()
    for line in lines:
        assert len(line) == 64, f"expected sha256 lines, got: {proc.stdout!r}"
    assert lines, f"no output: {proc.stdout!r}"
    return lines[0] if len(lines) == 1 else "\n".join(lines)


#: Appended to a child running under ``REPRO_TRACE``: prints the sha256
#: of the serialised trace as a second output line.
TRACE_HASH_SUFFIX = """
from repro.obs import trace as obs_trace
tr = obs_trace.tracer()
assert tr is not None, "REPRO_TRACE did not install a tracer"
print(hashlib.sha256(tr.to_jsonl().encode()).hexdigest())
"""


@pytest.mark.slow
def test_fault_injected_training_is_byte_identical_across_processes():
    assert _run_child(TRAINER_CHILD) == _run_child(TRAINER_CHILD)


@pytest.mark.slow
def test_event_run_timings_are_byte_identical_across_processes():
    assert _run_child(EVENT_RUN_CHILD) == _run_child(EVENT_RUN_CHILD)


@pytest.mark.slow
def test_sanitizers_do_not_change_a_single_bit():
    """The repro.check guards are read-only: the fault-injected 3-round
    run with ``REPRO_SANITIZE=1`` hashes identically to the plain
    determinism baseline (and, transitively, completes with zero
    sanitizer findings)."""
    assert _run_child(TRAINER_CHILD, sanitize=True) == _run_child(TRAINER_CHILD)


@pytest.mark.slow
def test_sanitized_event_run_matches_baseline():
    assert _run_child(EVENT_RUN_CHILD, sanitize=True) == _run_child(EVENT_RUN_CHILD)


@pytest.mark.slow
def test_traced_training_is_bit_identical_to_untraced():
    """Tracing is read-only: the fault-injected 3-round run under
    ``REPRO_TRACE=1`` hashes identically to the untraced baseline."""
    traced = _run_child(TRAINER_CHILD + TRACE_HASH_SUFFIX, trace="1")
    state_digest = traced.split("\n")[0]
    assert state_digest == _run_child(TRAINER_CHILD)


@pytest.mark.slow
def test_traced_event_run_matches_baseline_and_trace_is_deterministic():
    """The traced event run is bit-identical to the untraced one, and two
    identically-seeded processes serialise byte-identical traces."""
    first = _run_child(EVENT_RUN_CHILD + TRACE_HASH_SUFFIX, trace="1").split("\n")
    second = _run_child(EVENT_RUN_CHILD + TRACE_HASH_SUFFIX, trace="1").split("\n")
    assert first[0] == _run_child(EVENT_RUN_CHILD)
    assert first == second  # timing digest AND trace hash match byte-for-byte
