"""Tests for convergence-curve analysis."""

import numpy as np
import pytest

from repro.experiments.analysis import (
    auc_gap,
    convergence_round,
    crossover_round,
    summarize,
)


class TestCrossover:
    def test_simple_crossover(self):
        a = np.array([0.1, 0.2, 0.5, 0.6, 0.7])
        b = np.array([0.3, 0.3, 0.3, 0.3, 0.3])
        assert crossover_round(a, b, sustain=2) == 2

    def test_never_crosses(self):
        a = np.zeros(5)
        b = np.ones(5)
        assert crossover_round(a, b) is None

    def test_sustain_rejects_blips(self):
        a = np.array([0.0, 0.9, 0.0, 0.0, 0.0])
        b = np.full(5, 0.5)
        assert crossover_round(a, b, sustain=2) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            crossover_round(np.zeros(3), np.zeros(4))
        with pytest.raises(ValueError):
            crossover_round(np.zeros(3), np.zeros(3), sustain=0)


class TestAucGap:
    def test_constant_gap(self):
        a = np.full(11, 0.8)
        b = np.full(11, 0.5)
        np.testing.assert_allclose(auc_gap(a, b), 0.3)

    def test_sign(self):
        a = np.linspace(0, 1, 10)
        b = np.linspace(1, 0, 10)
        assert auc_gap(a, b) == pytest.approx(0.0, abs=1e-12)
        assert auc_gap(a, np.zeros(10)) > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            auc_gap(np.zeros(1), np.zeros(1))


class TestConvergenceRound:
    def test_converged_curve(self):
        curve = np.array([0.1, 0.5, 0.79, 0.80, 0.81, 0.80, 0.80])
        r = convergence_round(curve, tolerance=0.02, window=3)
        assert r == 2

    def test_never_settles(self):
        curve = np.array([0.0, 1.0, 0.0, 1.0, 0.0])
        assert convergence_round(curve, tolerance=0.01, window=2) is None

    def test_flat_curve_converges_at_zero(self):
        assert convergence_round(np.full(6, 0.5)) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            convergence_round(np.array([]))
        with pytest.raises(ValueError):
            convergence_round(np.zeros(3), tolerance=-1)


class TestSummarize:
    def test_full_summary(self):
        abd = np.array([0.1, 0.3, 0.6, 0.8, 0.82, 0.82, 0.82])
        van = np.array([0.1, 0.1, 0.1, 0.1, 0.10, 0.10, 0.10])
        s = summarize(abd, van)
        assert s.final_a == pytest.approx(0.82)
        assert s.final_b == pytest.approx(0.10)
        assert s.crossover == 1
        assert s.auc_advantage_a > 0.3
        assert s.convergence_a is not None
        assert s.convergence_b == 0
