"""Tests for ABDHFLConfig, LevelAggregation and correction policies."""

import pytest

from repro.core.config import ABDHFLConfig, LevelAggregation, TrainingConfig
from repro.core.correction import AdaptiveCorrection, ConstantCorrection


class TestLevelAggregation:
    def test_valid(self):
        agg = LevelAggregation("bra", "median")
        assert agg.kind == "bra"

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            LevelAggregation("magic", "median")

    def test_empty_name(self):
        with pytest.raises(ValueError):
            LevelAggregation("bra", "")


class TestTrainingConfig:
    def test_defaults(self):
        cfg = TrainingConfig()
        assert cfg.local_iterations == 5  # the paper's T

    def test_validation(self):
        with pytest.raises(ValueError):
            TrainingConfig(local_iterations=0)
        with pytest.raises(ValueError):
            TrainingConfig(batch_size=0)
        with pytest.raises(ValueError):
            TrainingConfig(learning_rate=0)


class TestABDHFLConfig:
    def test_default_resolution(self):
        cfg = ABDHFLConfig()
        assert cfg.aggregation_for(0).kind == "cba"
        assert cfg.aggregation_for(1).kind == "bra"
        assert cfg.aggregation_for(2).kind == "bra"

    def test_explicit_override(self):
        cfg = ABDHFLConfig(
            level_aggregation={1: LevelAggregation("cba", "pbft")}
        )
        assert cfg.aggregation_for(1).name == "pbft"
        assert cfg.aggregation_for(2).name == "multikrum"

    def test_validation(self):
        with pytest.raises(ValueError):
            ABDHFLConfig(phi=0.0)
        with pytest.raises(ValueError):
            ABDHFLConfig(phi=1.5)
        with pytest.raises(ValueError):
            ABDHFLConfig(flag_level=-1)
        with pytest.raises(ValueError):
            ABDHFLConfig(level_aggregation={-1: LevelAggregation("bra", "median")})
        with pytest.raises(TypeError):
            ABDHFLConfig(level_aggregation={0: "median"})


class TestConstantCorrection:
    def test_constant(self):
        policy = ConstantCorrection(0.7)
        assert policy.alpha(0.0, 0.5) == 0.7
        assert policy.alpha(10.0, 0.01) == 0.7

    def test_range_validation(self):
        with pytest.raises(ValueError):
            ConstantCorrection(0.0)
        with pytest.raises(ValueError):
            ConstantCorrection(1.5)

    def test_argument_validation(self):
        policy = ConstantCorrection()
        with pytest.raises(ValueError):
            policy.alpha(-1.0, 0.5)
        with pytest.raises(ValueError):
            policy.alpha(0.0, 0.0)
        with pytest.raises(ValueError):
            policy.alpha(0.0, 1.5)


class TestAdaptiveCorrection:
    def test_monotone_in_latency(self):
        """Paper: larger delay -> smaller alpha."""
        policy = AdaptiveCorrection(alpha_min=0.001)
        alphas = [policy.alpha(lat, 0.2) for lat in (0.0, 0.5, 1.0, 5.0)]
        assert all(a >= b for a, b in zip(alphas, alphas[1:]))
        assert alphas[0] > alphas[-1]

    def test_monotone_in_flag_fraction(self):
        """Paper: more representative flag model -> smaller alpha."""
        policy = AdaptiveCorrection(alpha_min=0.001)
        alphas = [policy.alpha(0.5, f) for f in (0.1, 0.3, 0.6, 0.9)]
        assert all(a >= b for a, b in zip(alphas, alphas[1:]))
        assert alphas[0] > alphas[-1]

    def test_bounded_in_unit_interval(self):
        policy = AdaptiveCorrection()
        for lat in (0.0, 1.0, 100.0):
            for frac in (0.01, 0.5, 1.0):
                a = policy.alpha(lat, frac)
                assert 0.0 < a <= 1.0

    def test_floor_respected(self):
        policy = AdaptiveCorrection(alpha_min=0.2)
        assert policy.alpha(1000.0, 1.0) == 0.2

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveCorrection(base=0.0)
        with pytest.raises(ValueError):
            AdaptiveCorrection(latency_scale=-1.0)
        with pytest.raises(ValueError):
            AdaptiveCorrection(base=0.5, alpha_min=0.6)
