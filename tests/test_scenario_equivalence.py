"""Golden equivalence: the scenario layer reproduces every legacy
entrypoint bit for bit.

Each legacy sweep body (pre-refactor ``run_table5`` /
``run_defence_matrix`` / ``breakdown_curve``) is inlined here as a golden
oracle — plain loops over the single-cell primitives (``run_cell``,
``gradient_gap``) exactly as the functions were written before they
became spec shims.  The suite then pins, for the same seeds:

* oracle cells == shim cells == ``ScenarioRunner`` cells (dataclass
  equality is exact float equality — bit identity);
* identical rendered report tables;
* byte-identical merged traces (the runner adds no events of its own);
* worker count as a pure wall-clock knob (workers>1 and a slow-marked
  ``REPRO_WORKERS=3`` subprocess variant).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.experiments.matrix import (
    MatrixCell,
    breakdown_curve,
    gradient_gap,
    run_defence_matrix,
)
from repro.experiments.setup import ExperimentConfig
from repro.experiments.table5 import format_table5, run_cell, run_table5
from repro.faults.plan import FaultPlan
from repro.obs import Tracer, trace
from repro.scenario import (
    FaultSpec,
    ScenarioRunner,
    accuracy_spec,
    defence_options_for,
    matrix_spec,
    render_result,
)
from test_determinism_subprocess import _run_child

TINY = ExperimentConfig(
    n_levels=2,
    cluster_size=4,
    n_top=2,
    image_side=8,
    samples_per_client=50,
    n_test=200,
    n_rounds=2,
    hidden=(16,),
)


# ----------------------------------------------------------------------
# golden oracles: the pre-refactor sweep bodies, verbatim
# ----------------------------------------------------------------------
def legacy_run_table5(base_config, fractions, distributions, attacks, n_runs=1):
    cells = []
    for iid in distributions:
        dist_cfg = base_config.for_distribution(iid)
        for attack in attacks:
            for fraction in fractions:
                cfg = replace(
                    dist_cfg, attack=attack, malicious_fraction=fraction
                )
                cells.append(run_cell(cfg, n_runs=n_runs))
    return cells


def legacy_run_defence_matrix(
    defences,
    attacks,
    byzantine_fraction=0.25,
    seed=0,
    consensus=None,
    consensus_adversary="none",
    **kwargs,
):
    cells = []
    for defence in defences:
        for attack in attacks:
            gap = gradient_gap(
                defence,
                attack,
                byzantine_fraction=byzantine_fraction,
                seed=seed,
                defence_options=defence_options_for(defence, byzantine_fraction),
                consensus=consensus,
                consensus_adversary=consensus_adversary,
                **kwargs,
            )
            cells.append(
                MatrixCell(
                    defence=defence,
                    attack=attack,
                    byzantine_fraction=byzantine_fraction,
                    gap=gap,
                    consensus=consensus,
                    consensus_adversary=consensus_adversary,
                )
            )
    return cells


def legacy_breakdown_curve(defence, attack, fractions, seed=0, **kwargs):
    cells = []
    for fraction in fractions:
        gap = gradient_gap(
            defence,
            attack if fraction > 0 else "none",
            byzantine_fraction=fraction,
            seed=seed,
            defence_options=defence_options_for(defence, fraction),
            **kwargs,
        )
        cells.append(MatrixCell(defence, attack, fraction, gap))
    return cells


# ----------------------------------------------------------------------
# gradient-estimation equivalence (fast)
# ----------------------------------------------------------------------
MATRIX_KW = dict(
    defences=("median", "trimmed_mean", "krum"),
    attacks=("sign_flip", "scaling"),
    byzantine_fraction=0.25,
    seed=5,
    n_trials=2,
)

ACS_KW = dict(
    defences=("median", "krum"),
    attacks=("sign_flip",),
    byzantine_fraction=0.2,
    n_total=7,
    dim=8,
    n_trials=2,
    seed=3,
    drop_fraction=0.15,
)


class TestDefenceMatrixEquivalence:
    def test_oracle_shim_and_runner_agree(self):
        oracle = legacy_run_defence_matrix(**MATRIX_KW)
        shim = run_defence_matrix(workers=1, **MATRIX_KW)
        spec = matrix_spec(
            defences=MATRIX_KW["defences"],
            attacks=MATRIX_KW["attacks"],
            fractions=(MATRIX_KW["byzantine_fraction"],),
            seed=MATRIX_KW["seed"],
            n_trials=MATRIX_KW["n_trials"],
        )
        result = ScenarioRunner(workers=1).run(spec)
        assert oracle == shim == result.cells
        assert np.array_equal(
            [c.gap for c in oracle], [c.gap for c in result.cells]
        )
        # identical report tables
        assert render_result(spec, oracle) == result.table

    @pytest.mark.parametrize(
        "adversary", ["none", "equivocate", "withhold", "crash_midway"]
    )
    def test_acs_consensus_adversaries(self, adversary):
        kw = dict(ACS_KW, consensus="acs", consensus_adversary=adversary)
        oracle = legacy_run_defence_matrix(**kw)
        shim = run_defence_matrix(workers=1, **kw)
        spec = matrix_spec(
            defences=kw["defences"],
            attacks=kw["attacks"],
            fractions=(kw["byzantine_fraction"],),
            seed=kw["seed"],
            n_total=kw["n_total"],
            dim=kw["dim"],
            n_trials=kw["n_trials"],
            drop_fraction=kw["drop_fraction"],
            consensus="acs",
            consensus_adversary=adversary,
        )
        result = ScenarioRunner(workers=1).run(spec)
        assert oracle == shim == result.cells
        assert all(np.isfinite(c.gap) for c in result.cells)
        assert render_result(spec, oracle) == result.table

    def test_acs_with_fault_plan(self):
        plan = FaultPlan.uniform(drop_probability=0.05, seed=11)
        kw = dict(
            ACS_KW,
            consensus="acs",
            consensus_adversary="equivocate",
            fault_plan=plan,
        )
        oracle = legacy_run_defence_matrix(**kw)
        shim = run_defence_matrix(workers=1, **kw)
        spec = matrix_spec(
            defences=kw["defences"],
            attacks=kw["attacks"],
            fractions=(kw["byzantine_fraction"],),
            seed=kw["seed"],
            n_total=kw["n_total"],
            dim=kw["dim"],
            n_trials=kw["n_trials"],
            drop_fraction=kw["drop_fraction"],
            consensus="acs",
            consensus_adversary="equivocate",
            faults=FaultSpec(seed=11, drop_probability=0.05),
        )
        result = ScenarioRunner(workers=1).run(spec)
        assert oracle == shim == result.cells

    def test_workers_are_a_pure_wall_clock_knob(self):
        spec = matrix_spec(
            defences=("median", "krum"),
            attacks=("sign_flip", "scaling"),
            fractions=(0.25,),
            n_trials=2,
        )
        serial = ScenarioRunner(workers=1).run(spec)
        sharded = ScenarioRunner(workers=2).run(spec)
        assert serial.cells == sharded.cells
        assert serial.table == sharded.table


class TestBreakdownEquivalence:
    def test_oracle_shim_and_runner_agree(self):
        fractions = (0.0, 0.2, 0.4)
        oracle = legacy_breakdown_curve(
            "trimmed_mean", "sign_flip", fractions, seed=4, n_trials=2
        )
        shim = breakdown_curve(
            "trimmed_mean", "sign_flip", fractions=fractions, seed=4, n_trials=2
        )
        spec = matrix_spec(
            kind="breakdown_curve",
            defences=("trimmed_mean",),
            attacks=("sign_flip",),
            fractions=fractions,
            seed=4,
            n_trials=2,
        )
        result = ScenarioRunner(workers=1).run(spec)
        assert oracle == shim == result.cells
        # fraction 0 measured the clean baseline but kept the attack label
        assert result.cells[0].attack == "sign_flip"
        assert render_result(spec, oracle) == result.table


class TestTraceEquivalence:
    def test_oracle_and_runner_traces_are_byte_identical(self):
        """The runner emits no events of its own: a spec-driven sweep's
        merged trace serialises to exactly the oracle loop's trace."""

        def oracle_jsonl() -> str:
            with trace.scoped(Tracer()) as tr:
                legacy_run_defence_matrix(
                    defences=("median", "krum"),
                    attacks=("sign_flip",),
                    n_trials=1,
                )
            assert tr.events, "traced sweep recorded nothing"
            return tr.to_jsonl()

        def runner_jsonl(workers: int) -> str:
            spec = matrix_spec(
                defences=("median", "krum"),
                attacks=("sign_flip",),
                fractions=(0.25,),
                n_trials=1,
            )
            with trace.scoped(Tracer()) as tr:
                ScenarioRunner(workers=workers).run(spec)
            assert tr.events, "traced sweep recorded nothing"
            return tr.to_jsonl()

        assert oracle_jsonl() == runner_jsonl(1)

    @pytest.mark.slow
    def test_trace_byte_identity_survives_fan_out(self):
        def runner_jsonl(workers: int) -> str:
            spec = matrix_spec(
                defences=("median", "krum"),
                attacks=("sign_flip",),
                fractions=(0.25,),
                n_trials=1,
            )
            with trace.scoped(Tracer()) as tr:
                ScenarioRunner(workers=workers).run(spec)
            return tr.to_jsonl()

        assert runner_jsonl(1) == runner_jsonl(2)


# ----------------------------------------------------------------------
# trainer-based (accuracy grid) equivalence
# ----------------------------------------------------------------------
TABLE5_KW = dict(
    fractions=(0.0, 0.5),
    distributions=(True,),
    attacks=("type1",),
    n_runs=1,
)


class TestTable5Equivalence:
    def test_oracle_shim_and_runner_agree(self):
        oracle = legacy_run_table5(TINY, **TABLE5_KW)
        shim = run_table5(TINY, workers=1, **TABLE5_KW)
        spec = accuracy_spec(
            TINY,
            fractions=TABLE5_KW["fractions"],
            distributions=("iid",),
            attacks=TABLE5_KW["attacks"],
            n_runs=1,
        )
        result = ScenarioRunner(workers=1).run(spec)
        assert oracle == shim == result.cells
        assert np.array_equal(
            [c.abdhfl_accuracy for c in oracle],
            [c.abdhfl_accuracy for c in result.cells],
        )
        assert np.array_equal(
            [c.vanilla_accuracy for c in oracle],
            [c.vanilla_accuracy for c in result.cells],
        )
        # identical report tables, through both renderers
        assert format_table5(oracle) == result.table
        assert render_result(spec, oracle) == result.table

    @pytest.mark.slow
    def test_workers_are_a_pure_wall_clock_knob(self):
        spec = accuracy_spec(
            TINY,
            fractions=(0.0, 0.5),
            distributions=("iid",),
            attacks=("type1",),
        )
        serial = ScenarioRunner(workers=1).run(spec)
        sharded = ScenarioRunner(workers=2).run(spec)
        assert serial.cells == sharded.cells
        assert serial.table == sharded.table


# ----------------------------------------------------------------------
# REPRO_WORKERS=3 subprocess variant (slow)
# ----------------------------------------------------------------------
SCENARIO_CHILD = """
import hashlib
import numpy as np
from repro.experiments import ExperimentConfig
from repro.scenario import ScenarioRunner, accuracy_spec, matrix_spec

digest = hashlib.sha256()

spec = matrix_spec(
    defences=("median", "trimmed_mean", "krum"),
    attacks=("sign_flip", "scaling"),
    fractions=(0.25,),
    seed=5,
    n_trials=2,
)
for c in ScenarioRunner().run(spec).cells:
    digest.update(np.float64(c.gap).tobytes())

cfg = ExperimentConfig(
    n_levels=2, cluster_size=4, n_top=2, image_side=8,
    samples_per_client=50, n_test=200, n_rounds=2, hidden=(16,),
)
acc = accuracy_spec(
    cfg, fractions=(0.0, 0.5), distributions=("iid",), attacks=("type1",),
)
for c in ScenarioRunner().run(acc).cells:
    digest.update(np.float64(c.malicious_fraction).tobytes())
    digest.update(np.float64(c.abdhfl_accuracy).tobytes())
    digest.update(np.float64(c.vanilla_accuracy).tobytes())
print(digest.hexdigest())
"""


@pytest.mark.slow
def test_scenario_runner_bit_identical_under_repro_workers_3():
    """End to end through the environment gate: ``REPRO_WORKERS=3`` must
    hash the scenario-driven sweeps exactly like the serial baseline."""
    assert _run_child(SCENARIO_CHILD, workers=3) == _run_child(
        SCENARIO_CHILD, workers=1
    )
