"""Tests for hierarchy construction and validation."""

import numpy as np
import pytest

from repro.topology.cluster import Cluster
from repro.topology.tree import Hierarchy, assign_byzantine, build_acsm, build_ecsm


class TestCluster:
    def test_validation(self):
        with pytest.raises(ValueError):
            Cluster(level=0, index=0, members=[])
        with pytest.raises(ValueError):
            Cluster(level=0, index=0, members=[1, 1])
        with pytest.raises(ValueError):
            Cluster(level=0, index=0, members=[1, 2], leader=3)
        with pytest.raises(ValueError):
            Cluster(level=-1, index=0, members=[1])

    def test_contains(self):
        c = Cluster(level=1, index=0, members=[3, 4])
        assert 3 in c and 5 not in c
        assert c.size == 2


class TestECSM:
    def test_paper_topology(self, paper_hierarchy):
        h = paper_hierarchy
        assert h.n_levels == 3
        assert h.bottom_level == 2
        assert h.top_cluster.size == 4
        assert len(h.clusters_at(1)) == 4
        assert len(h.clusters_at(2)) == 16
        assert len(h.bottom_clients()) == 64

    def test_leaders_appear_upward(self, paper_hierarchy):
        h = paper_hierarchy
        for level in (1, 2):
            upper = {m for c in h.clusters_at(level - 1) for m in c.members}
            for cluster in h.clusters_at(level):
                assert cluster.leader in upper

    def test_leader_is_member(self, paper_hierarchy):
        for level in range(1, 3):
            for cluster in paper_hierarchy.clusters_at(level):
                assert cluster.leader in cluster.members

    def test_two_level_minimum(self):
        h = build_ecsm(n_levels=2, cluster_size=5, n_top=3)
        assert h.n_levels == 2
        assert len(h.bottom_clients()) == 15

    def test_random_leader_election(self):
        rng = np.random.default_rng(0)
        h = build_ecsm(n_levels=3, cluster_size=4, n_top=4, rng=rng)
        h.validate()  # structure must hold regardless of who leads

    def test_validation(self):
        with pytest.raises(ValueError):
            build_ecsm(n_levels=1, cluster_size=4)
        with pytest.raises(ValueError):
            build_ecsm(n_levels=2, cluster_size=0)
        with pytest.raises(ValueError):
            build_ecsm(n_levels=2, cluster_size=2, n_top=0)

    def test_node_roles_recorded(self, paper_hierarchy):
        h = paper_hierarchy
        top_member = h.top_cluster.members[0]
        assert 0 in h.nodes[top_member].roles
        assert 2 in h.nodes[top_member].roles  # also a bottom device


class TestQueries:
    def test_cluster_of(self, paper_hierarchy):
        h = paper_hierarchy
        device = h.bottom_clients()[0]
        cluster = h.cluster_of(device, 2)
        assert device in cluster

    def test_cluster_of_missing(self, paper_hierarchy):
        with pytest.raises(KeyError):
            paper_hierarchy.cluster_of(63, 0)  # device 63 never leads

    def test_led_cluster(self, paper_hierarchy):
        h = paper_hierarchy
        for cluster in h.clusters_at(2):
            led = h.led_cluster(cluster.leader, 2)
            assert led is cluster or led.index != cluster.index or led is cluster

    def test_descendants_partition_bottom(self, paper_hierarchy):
        h = paper_hierarchy
        all_desc = []
        for cluster in h.clusters_at(1):
            all_desc.extend(h.descendants(cluster))
        assert sorted(all_desc) == sorted(h.bottom_clients())

    def test_descendants_of_top(self, paper_hierarchy):
        h = paper_hierarchy
        # each top node's level-1 cluster covers a quarter of the devices
        for member in h.top_cluster.members:
            led = h.led_cluster(member, 1)
            assert len(h.descendants(led)) == 16


class TestHierarchyValidation:
    def test_rejects_multi_cluster_top(self):
        top = [
            Cluster(level=0, index=0, members=[0]),
            Cluster(level=0, index=1, members=[1]),
        ]
        bottom = [Cluster(level=1, index=0, members=[0, 1], leader=0)]
        with pytest.raises(ValueError):
            Hierarchy(levels=[top, bottom])

    def test_rejects_duplicate_membership(self):
        top = [Cluster(level=0, index=0, members=[0])]
        bottom = [
            Cluster(level=1, index=0, members=[0, 1], leader=0),
            Cluster(level=1, index=1, members=[1, 2], leader=1),
        ]
        with pytest.raises(ValueError):
            Hierarchy(levels=[top, bottom])

    def test_rejects_leader_not_in_upper(self):
        top = [Cluster(level=0, index=0, members=[0])]
        bottom = [Cluster(level=1, index=0, members=[5, 6], leader=5)]
        with pytest.raises(ValueError):
            Hierarchy(levels=[top, bottom])

    def test_rejects_single_level(self):
        with pytest.raises(ValueError):
            Hierarchy(levels=[[Cluster(level=0, index=0, members=[0])]])


class TestACSM:
    def test_arbitrary_sizes(self):
        # top: 2 members; level 1: clusters [3, 2]; bottom: 5 clusters
        h = build_acsm([[3, 2], [2, 3, 4, 2, 3]])
        assert h.n_levels == 3
        assert h.top_cluster.size == 2
        sizes = [c.size for c in h.clusters_at(2)]
        assert sizes == [2, 3, 4, 2, 3]
        assert len(h.bottom_clients()) == 14

    def test_inconsistent_stacking(self):
        with pytest.raises(ValueError):
            build_acsm([[3], [2, 3, 4, 2]])  # 3 members but 4 lower clusters

    def test_validation(self):
        with pytest.raises(ValueError):
            build_acsm([])
        with pytest.raises(ValueError):
            build_acsm([[0]])


class TestByzantineAssignment:
    def test_fraction_counts(self, paper_hierarchy, rng):
        byz = assign_byzantine(paper_hierarchy, 0.25, rng)
        assert len(byz) == 16
        assert len(paper_hierarchy.byzantine_devices()) == 16

    def test_zero_fraction(self, paper_hierarchy, rng):
        assert assign_byzantine(paper_hierarchy, 0.0, rng) == []

    def test_prefix_placement(self, paper_hierarchy, rng):
        byz = assign_byzantine(paper_hierarchy, 0.25, rng, placement="prefix")
        assert byz == list(range(16))

    def test_spread_placement_bounds_cluster_share(self, paper_hierarchy, rng):
        assign_byzantine(paper_hierarchy, 0.25, rng, placement="spread")
        for cluster in paper_hierarchy.clusters_at(2):
            assert paper_hierarchy.cluster_byzantine_fraction(cluster) <= 0.25 + 1e-9

    def test_reassignment_clears_previous(self, paper_hierarchy, rng):
        assign_byzantine(paper_hierarchy, 0.5, rng)
        byz = assign_byzantine(paper_hierarchy, 0.1, rng)
        assert len(byz) == round(0.1 * 64)
        assert len(paper_hierarchy.byzantine_devices()) == len(byz)

    def test_invalid_inputs(self, paper_hierarchy, rng):
        with pytest.raises(ValueError):
            assign_byzantine(paper_hierarchy, 1.5, rng)
        with pytest.raises(ValueError):
            assign_byzantine(paper_hierarchy, 0.2, rng, placement="bogus")
