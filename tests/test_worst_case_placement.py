"""Tests for the Definition-4 worst-case Byzantine placement."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.analysis import max_byzantine_count, max_byzantine_fraction
from repro.topology.tree import assign_byzantine, build_ecsm, worst_case_placement


class TestWorstCasePlacement:
    def test_paper_instance_counts(self, paper_hierarchy):
        byz = worst_case_placement(paper_hierarchy, 0.25, 0.25)
        assert len(byz) == 37  # 57.8125% of 64

    def test_matches_theorem2_count(self):
        for n_levels, m in ((3, 4), (2, 4), (4, 3)):
            h = build_ecsm(n_levels=n_levels, cluster_size=m, n_top=4)
            byz = worst_case_placement(h, 0.25, 1.0 / m)
            expected = max_byzantine_count(4, m, n_levels - 1, 0.25, 1.0 / m)
            assert len(byz) == round(expected), (n_levels, m)

    def test_honest_clusters_within_gamma2(self, paper_hierarchy):
        """Every cluster is either fully Byzantine or within gamma2."""
        worst_case_placement(paper_hierarchy, 0.25, 0.25)
        for level in range(1, paper_hierarchy.n_levels):
            for cluster in paper_hierarchy.clusters_at(level):
                frac = paper_hierarchy.cluster_byzantine_fraction(cluster)
                assert frac <= 0.25 + 1e-9 or frac == 1.0, (level, cluster.index)

    def test_leaders_of_honest_clusters_honest(self, paper_hierarchy):
        worst_case_placement(paper_hierarchy, 0.25, 0.25)
        for level in range(1, paper_hierarchy.n_levels):
            for cluster in paper_hierarchy.clusters_at(level):
                frac = paper_hierarchy.cluster_byzantine_fraction(cluster)
                if frac < 1.0:
                    assert not paper_hierarchy.is_byzantine(cluster.leader)

    def test_zero_gammas_mark_nobody(self, paper_hierarchy):
        assert worst_case_placement(paper_hierarchy, 0.0, 0.0) == []

    def test_resets_previous_flags(self, paper_hierarchy, rng):
        assign_byzantine(paper_hierarchy, 0.9, rng)
        byz = worst_case_placement(paper_hierarchy, 0.25, 0.25)
        assert len(paper_hierarchy.byzantine_devices()) == len(byz)

    def test_invalid_gammas(self, paper_hierarchy):
        with pytest.raises(ValueError):
            worst_case_placement(paper_hierarchy, -0.1, 0.25)
        with pytest.raises(ValueError):
            worst_case_placement(paper_hierarchy, 0.25, 1.5)


class TestWorstCaseViaAssign:
    def test_exact_fraction_realised(self, paper_hierarchy, rng):
        byz = assign_byzantine(
            paper_hierarchy, 0.578, rng, placement="worst_case"
        )
        assert len(byz) == 37

    def test_two_level_same_count(self, rng):
        h = build_ecsm(n_levels=2, cluster_size=16, n_top=4)
        byz = assign_byzantine(h, 0.578, rng, placement="worst_case")
        assert len(byz) == 37

    def test_zero_fraction(self, paper_hierarchy, rng):
        assert (
            assign_byzantine(paper_hierarchy, 0.0, rng, placement="worst_case")
            == []
        )


@settings(max_examples=15, deadline=None)
@given(
    k1=st.integers(0, 3),
    k2=st.integers(0, 3),
)
def test_placement_fraction_never_exceeds_theorem2(k1, k2):
    """Property: the realized bottom fraction equals the Theorem-2 bound
    for the corresponding (gamma1, gamma2) when quotas divide exactly."""
    h = build_ecsm(n_levels=3, cluster_size=4, n_top=4)
    gamma1 = k1 / 4
    gamma2 = k2 / 4
    byz = worst_case_placement(h, gamma1 + 1e-9, gamma2 + 1e-9)
    realized = len(byz) / 64
    bound = max_byzantine_fraction(gamma1, gamma2, 2)
    np.testing.assert_allclose(realized, bound, atol=1e-9)
