"""Tests for the flag-level advisor (Table VIII) and scheme costs (Table IV)."""

import pytest

from repro.pipeline.costs import hierarchy_message_profile, scheme_round_cost
from repro.pipeline.flag_level import advise_flag_level, delay_case, sweep_flag_levels
from repro.pipeline.workflow import PipelineModel
from repro.sim.latency import FixedLatency


class TestDelayCase:
    def test_all_four_cases(self):
        assert delay_case(10, 10, 5) == "big tau'-big tau_g"
        assert delay_case(1, 1, 5) == "small tau'-small tau_g"
        assert delay_case(1, 10, 5) == "small tau'-big tau_g"
        assert delay_case(10, 1, 5) == "big tau'-small tau_g"

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            delay_case(1, 1, 0)


class TestAdvice:
    def test_small_small_near_top(self):
        advice = advise_flag_level(1, 1, 5, n_levels=3)
        assert advice.suggested_level == 1
        assert "top" in advice.recommendation

    def test_small_big_near_top(self):
        advice = advise_flag_level(1, 10, 5, n_levels=3)
        assert advice.suggested_level == 1

    def test_big_cases_defer(self):
        for g in (1, 10):
            advice = advise_flag_level(10, g, 5, n_levels=3)
            assert advice.suggested_level is None
            assert "depends" in advice.recommendation

    def test_validation(self):
        with pytest.raises(ValueError):
            advise_flag_level(1, 1, 5, n_levels=1)


class TestSweep:
    def _model(self, partial=1.0, global_=1.0, n_levels=3):
        L = n_levels - 1
        return PipelineModel(
            collect_models={l: FixedLatency(partial) for l in range(1, L + 1)},
            aggregate_models={l: FixedLatency(partial) for l in range(1, L + 1)},
            global_collect=FixedLatency(global_),
            global_aggregate=FixedLatency(global_),
        )

    def test_covers_all_flag_levels(self, rng):
        out = sweep_flag_levels(self._model(), 20, rng)
        assert set(out) == {0, 1}

    def test_deeper_flag_higher_efficiency(self, rng):
        out = sweep_flag_levels(self._model(n_levels=4), 20, rng)
        effs = [out[f]["efficiency"] for f in sorted(out)]
        assert all(a <= b for a, b in zip(effs, effs[1:]))

    def test_big_global_makes_pipelining_valuable(self, rng):
        """With an expensive global phase (consensus at top), the flag
        level below the top captures most of the win — the Table VIII
        small-tau'/big-tau_g row."""
        out = sweep_flag_levels(self._model(partial=0.1, global_=20.0), 30, rng)
        assert out[1]["efficiency"] > 0.9

    def test_correction_weight_penalises(self, rng):
        plain = sweep_flag_levels(self._model(), 10, rng, correction_weight=0.0)
        penal = sweep_flag_levels(self._model(), 10, rng, correction_weight=1.0)
        for f in plain:
            assert penal[f]["score"] <= plain[f]["score"] + 1e-12

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            sweep_flag_levels(self._model(), 0, rng)
        with pytest.raises(ValueError):
            sweep_flag_levels(self._model(), 5, rng, correction_weight=-1)


class TestSchemeCosts:
    def test_profile(self, paper_hierarchy):
        profile = hierarchy_message_profile(paper_hierarchy)
        assert profile["n_devices"] == 64
        assert profile["top_size"] == 4
        assert profile["n_intermediate_clusters"] == 20
        assert profile["dissemination_edges"] == 80

    def test_scheme3_cheapest_scheme4_dearest(self, paper_hierarchy):
        """Table IV: all-BRA is the low-cost scheme, all-CBA the high-cost."""
        costs = {
            s: scheme_round_cost(paper_hierarchy, s).cost.total_messages()
            for s in (1, 2, 3, 4)
        }
        assert costs[3] == min(costs.values())
        assert costs[4] == max(costs.values())
        # schemes 1 and 2 sit strictly between
        assert costs[3] < costs[1] < costs[4]
        assert costs[3] < costs[2] < costs[4]

    def test_cba_rounds_multiplier(self, paper_hierarchy):
        one = scheme_round_cost(paper_hierarchy, 4, cba_rounds=1)
        three = scheme_round_cost(paper_hierarchy, 4, cba_rounds=3)
        assert three.cost.model_messages > one.cost.model_messages

    def test_bytes_scale_with_dimension(self, paper_hierarchy):
        cost = scheme_round_cost(paper_hierarchy, 1)
        assert cost.total_bytes(1000) > cost.total_bytes(10)

    def test_validation(self, paper_hierarchy):
        with pytest.raises(ValueError):
            scheme_round_cost(paper_hierarchy, 5)
        with pytest.raises(ValueError):
            scheme_round_cost(paper_hierarchy, 1, cba_rounds=0)
