"""Tests for staleness weighting and the FedAsync baseline."""

import numpy as np
import pytest

from repro.aggregation.staleness import (
    ConstantStaleness,
    HingeStaleness,
    PolynomialStaleness,
    apply_staleness,
)
from repro.core.config import TrainingConfig
from repro.core.fedasync import FedAsyncTrainer
from repro.data.partition import iid_partition
from repro.data.synthetic_mnist import SyntheticMNIST, make_synthetic_mnist
from repro.nn.model import MLP
from repro.sim.latency import FixedLatency, LogNormalLatency, StragglerLatency
from repro.utils.seeding import SeedSequenceFactory


class TestStalenessWeights:
    def test_constant(self):
        policy = ConstantStaleness()
        assert policy.weight(0.0) == 1.0
        assert policy.weight(100.0) == 1.0

    def test_polynomial_decreasing(self):
        policy = PolynomialStaleness(a=0.5)
        values = [policy.weight(s) for s in (0, 1, 4, 16)]
        assert values[0] == 1.0
        assert all(a > b for a, b in zip(values, values[1:]))
        np.testing.assert_allclose(policy.weight(3.0), 0.5)

    def test_polynomial_a_zero_constant(self):
        assert PolynomialStaleness(a=0.0).weight(99.0) == 1.0

    def test_hinge_flat_then_decay(self):
        policy = HingeStaleness(a=1.0, b=4.0)
        assert policy.weight(0.0) == 1.0
        assert policy.weight(4.0) == 1.0
        np.testing.assert_allclose(policy.weight(5.0), 0.5)
        assert policy.weight(10.0) < policy.weight(5.0)

    def test_weights_vector(self):
        policy = PolynomialStaleness(a=1.0)
        out = policy.weights(np.array([0.0, 1.0, 3.0]))
        np.testing.assert_allclose(out, [1.0, 0.5, 0.25])

    def test_negative_staleness_rejected(self):
        with pytest.raises(ValueError):
            PolynomialStaleness().weights(np.array([-1.0]))

    def test_apply_staleness(self):
        weights = np.array([2.0, 2.0])
        staleness = np.array([0.0, 3.0])
        out = apply_staleness(weights, staleness, PolynomialStaleness(a=1.0))
        np.testing.assert_allclose(out, [2.0, 0.5])

    def test_apply_shape_mismatch(self):
        with pytest.raises(ValueError):
            apply_staleness(np.ones(2), np.ones(3), ConstantStaleness())

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            PolynomialStaleness(a=-1.0)
        with pytest.raises(ValueError):
            HingeStaleness(a=-1.0)


def async_setup(n_clients=8, seed=0):
    seeds = SeedSequenceFactory(seed)
    cfg = SyntheticMNIST(side=8, noise_sigma=0.15)
    train, test = make_synthetic_mnist(n_clients * 80, 300, seeds.generator("d"), cfg)
    part = iid_partition(train, n_clients, seeds.generator("p"))
    datasets = dict(enumerate(part.shards))
    model = MLP(64, (16,), 10, seeds.generator("i"))
    return datasets, model, test


TRAIN_CFG = TrainingConfig(local_iterations=4, batch_size=32, learning_rate=0.3)


class TestFedAsync:
    def test_learns(self):
        datasets, model, test = async_setup()
        trainer = FedAsyncTrainer(datasets, model, TRAIN_CFG, test, seed=1)
        history = trainer.run(400, eval_every=100)
        assert history[-1].test_accuracy > 0.5
        assert history[-1].version == 400

    def test_time_advances_monotonically(self):
        datasets, model, test = async_setup()
        trainer = FedAsyncTrainer(datasets, model, TRAIN_CFG, test, seed=2)
        times = []
        for _ in range(50):
            trainer.step()
            times.append(trainer.sim_time)
        assert all(a <= b for a, b in zip(times, times[1:]))

    def test_stragglers_produce_staleness(self):
        datasets, model, test = async_setup()
        trainer = FedAsyncTrainer(
            datasets,
            model,
            TRAIN_CFG,
            test,
            compute_latency=StragglerLatency(FixedLatency(1.0), p=0.3, factor=20.0),
            seed=3,
        )
        trainer.run(200, eval_every=200)
        assert max(trainer._staleness_log) > 3

    def test_homogeneous_clients_low_staleness(self):
        datasets, model, test = async_setup()
        trainer = FedAsyncTrainer(
            datasets,
            model,
            TRAIN_CFG,
            test,
            compute_latency=FixedLatency(1.0),
            seed=3,
        )
        trainer.run(100, eval_every=100)
        # with identical delays, staleness equals n_clients - 1 at most
        assert max(trainer._staleness_log) <= len(datasets) - 1

    def test_staleness_discount_tames_stragglers(self):
        """With heavy stragglers, polynomial discounting must not do worse
        than no discounting (the FedAsync claim)."""
        latency = StragglerLatency(LogNormalLatency(1.0, 0.4), p=0.25, factor=30.0)
        datasets, model, test = async_setup(seed=5)
        discounted = FedAsyncTrainer(
            datasets, model, TRAIN_CFG, test,
            staleness=PolynomialStaleness(a=1.0),
            compute_latency=latency, seed=5,
        )
        discounted.run(400, eval_every=400)
        datasets2, model2, test2 = async_setup(seed=5)
        flat = FedAsyncTrainer(
            datasets2, model2, TRAIN_CFG, test2,
            staleness=ConstantStaleness(),
            compute_latency=latency, seed=5,
        )
        flat.run(400, eval_every=400)
        assert (
            discounted.history[-1].test_accuracy
            >= flat.history[-1].test_accuracy - 0.1
        )

    def test_validation(self):
        datasets, model, test = async_setup()
        with pytest.raises(ValueError):
            FedAsyncTrainer({}, model, TRAIN_CFG, test)
        with pytest.raises(ValueError):
            FedAsyncTrainer(datasets, model, TRAIN_CFG, test, beta=0.0)
        trainer = FedAsyncTrainer(datasets, model, TRAIN_CFG, test)
        with pytest.raises(ValueError):
            trainer.run(0)

    def test_deterministic(self):
        finals = []
        for _ in range(2):
            datasets, model, test = async_setup(seed=7)
            trainer = FedAsyncTrainer(datasets, model, TRAIN_CFG, test, seed=7)
            trainer.run(60, eval_every=60)
            finals.append(trainer.global_model.copy())
        np.testing.assert_array_equal(finals[0], finals[1])
