"""Tests for voting-based consensus (the paper's top-level mechanism)."""

import numpy as np
import pytest

from repro.consensus import VotingConsensus
from repro.consensus.validation import median_distance_scores


def proposals_with_outlier(rng, n=4, d=12):
    center = rng.standard_normal(d)
    good = center + 0.05 * rng.standard_normal((n - 1, d))
    bad = center + 100.0
    return np.vstack([good, bad[None, :]]), center


class TestAdaptiveVoting:
    def test_excludes_outlier(self, rng):
        proposals, center = proposals_with_outlier(rng)
        result = VotingConsensus().agree(proposals, rng=rng)
        assert not result.accepted[-1]
        assert result.accepted[:-1].all()
        assert np.linalg.norm(result.value - center) < 1.0

    def test_excludes_multiple_outliers(self, rng):
        """Adaptive mode can exclude more than gamma1 proposals — the
        behaviour behind the paper's 65 % result.  (The data-free median
        surrogate needs an honest majority, hence 3 good vs 2 bad.)"""
        center = rng.standard_normal(8)
        good = center + 0.05 * rng.standard_normal((3, 8))
        bad = np.full((2, 8), 1000.0)
        proposals = np.vstack([good, bad])
        result = VotingConsensus().agree(proposals, rng=rng)
        assert result.n_excluded == 2
        assert np.linalg.norm(result.value - center) < 1.0

    def test_all_equal_accept_all(self, rng):
        proposals = np.tile(rng.standard_normal(6), (4, 1))
        result = VotingConsensus().agree(proposals, rng=rng)
        assert result.accepted.all()
        np.testing.assert_allclose(result.value, proposals[0])

    def test_byzantine_minority_votes_cannot_flip(self, rng):
        proposals, center = proposals_with_outlier(rng, n=4)
        byz = np.array([False, False, False, True])  # outlier votes maliciously
        result = VotingConsensus().agree(proposals, byzantine_mask=byz, rng=rng)
        assert not result.accepted[-1]
        assert np.linalg.norm(result.value - center) < 1.0


class TestFixedExclusion:
    def test_excludes_exactly_one(self, rng):
        proposals, _ = proposals_with_outlier(rng)
        result = VotingConsensus(n_exclude=1).agree(proposals, rng=rng)
        assert result.n_excluded == 1
        assert not result.accepted[-1]

    def test_clamped_to_leave_survivor(self, rng):
        proposals, _ = proposals_with_outlier(rng, n=3)
        result = VotingConsensus(n_exclude=10).agree(proposals, rng=rng)
        assert result.accepted.sum() == 1

    def test_zero_exclusion_keeps_all(self, rng):
        proposals, _ = proposals_with_outlier(rng)
        result = VotingConsensus(n_exclude=0).agree(proposals, rng=rng)
        assert result.accepted.all()


class TestCostAndWeights:
    def test_message_bill(self, rng):
        proposals, _ = proposals_with_outlier(rng, n=5)
        result = VotingConsensus().agree(proposals, rng=rng)
        assert result.cost.model_messages == 5 * 4
        assert result.cost.scalar_messages == 5 * 4
        assert result.cost.rounds == 1

    def test_weighted_average_of_accepted(self, rng):
        proposals = np.array([[0.0], [10.0], [1000.0]])
        weights = np.array([3.0, 1.0, 1.0])
        result = VotingConsensus().agree(proposals, weights=weights, rng=rng)
        if result.accepted[:2].all() and not result.accepted[2]:
            np.testing.assert_allclose(result.value, [2.5])

    def test_validation(self):
        with pytest.raises(ValueError):
            VotingConsensus(n_exclude=-1)
        with pytest.raises(ValueError):
            VotingConsensus(vote_margin=-0.1)

    def test_rejects_bad_proposals(self, rng):
        with pytest.raises(ValueError):
            VotingConsensus().agree(np.zeros(5), rng=rng)
        with pytest.raises(ValueError):
            VotingConsensus().agree(
                np.zeros((2, 2)), weights=np.array([1.0]), rng=rng
            )


class TestMedianDistanceScores:
    def test_outlier_scores_lowest(self, rng):
        proposals, _ = proposals_with_outlier(rng)
        scores = median_distance_scores(proposals)
        assert np.argmin(scores[0]) == proposals.shape[0] - 1

    def test_rows_identical(self, rng):
        proposals, _ = proposals_with_outlier(rng)
        scores = median_distance_scores(proposals)
        for row in scores[1:]:
            np.testing.assert_array_equal(row, scores[0])
