"""The abdlint whole-program engine (tools/abdlint).

Covers the pass-1 symbol table (module summaries, import graph,
registration capture), each cross-module rule against seeded mutations
of the kind it exists to catch, SARIF serialisation, and the incremental
cache (correct invalidation + the warm-run speed contract).
"""

import json
import sys
import time
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "tools"))

from abdlint import arch, registry, seedflow  # noqa: E402
from abdlint.cache import ENGINE_VERSION, SummaryCache  # noqa: E402
from abdlint.engine import build_summary, discover, run_engine  # noqa: E402
from abdlint.findings import RULES, module_name  # noqa: E402
from abdlint.project import Project, summarize_source, summarize_toml  # noqa: E402
from abdlint.sarif import to_sarif  # noqa: E402
from abdlint.selftest import self_test  # noqa: E402


def project_from(files: dict[str, str]) -> Project:
    """A Project built from in-memory {path: source} sources."""
    return Project(
        [build_summary(path, source) for path, source in files.items()]
    )


# ----------------------------------------------------------------------
# pass 1: module summaries / symbol table
# ----------------------------------------------------------------------
class TestModuleSummary:
    def test_module_name_mapping(self):
        assert module_name("src/repro/core/trainer.py") == "repro.core.trainer"
        assert module_name("src/repro/core/__init__.py") == "repro.core"
        assert module_name("tests/test_foo.py") is None

    def test_import_graph_edges(self):
        s = summarize_source(
            "src/repro/core/x.py",
            "import repro.sim\n"
            "from repro.aggregation import mean\n"
            "from typing import TYPE_CHECKING\n"
            "if TYPE_CHECKING:\n"
            "    from repro.cli import main\n",
        )
        edges = {(m, type_only) for m, _line, type_only, _fn in s.imports}
        assert ("repro.sim", False) in edges
        assert ("repro.aggregation", False) in edges
        assert ("repro.cli", True) in edges  # type-only flag recorded

    def test_relative_import_resolution(self):
        s = summarize_source(
            "src/repro/consensus/async_bft/aba.py",
            "from . import events\nfrom ..base import ConsensusResult\n",
        )
        modules = [m for m, *_ in s.imports]
        # `from . import events` edges to the containing package; the
        # two-dots form resolves through the parent.
        assert "repro.consensus.async_bft" in modules
        assert "repro.consensus.base" in modules

    def test_function_table_params_and_assigns(self):
        s = summarize_source(
            "src/repro/sim/y.py",
            "def f(a, b=2):\n    c = a + 1\n    return c\n",
        )
        assert s.functions["f"]["params"] == ["a", "b"]
        desc, line = s.functions["f"]["assigns"]["c"]
        assert desc[0] == "binop" and line == 2

    def test_registration_capture(self):
        s = summarize_source(
            "src/repro/aggregation/z.py",
            "from repro.aggregation.registry import register_aggregator\n"
            "@register_aggregator('myrule')\n"
            "class MyRule:\n"
            "    pass\n",
        )
        assert s.registrations["aggregators"] == [["myrule", 2]]

    def test_factories_and_kinds_capture(self):
        s = summarize_source(
            "src/repro/consensus/registry.py",
            "_FACTORIES = {'voting': VotingConsensus}\nKINDS = ('a_grid',)\n",
        )
        assert s.registrations["consensus_factories"] == [
            ["voting", "VotingConsensus", 1]
        ]
        assert s.registrations["scenario_kinds"] == [["a_grid", 2]]

    def test_kind_branch_capture(self):
        s = summarize_source(
            "src/repro/scenario/runner.py",
            "def run(spec):\n"
            "    if spec.kind == 'accuracy_grid':\n"
            "        return 1\n"
            "    if spec.kind in ('defence_matrix', 'breakdown_curve'):\n"
            "        return 2\n",
        )
        assert set(s.registrations["kind_branches"]) == {
            "accuracy_grid",
            "defence_matrix",
            "breakdown_curve",
        }

    def test_toml_summary_records_kind(self):
        s = summarize_toml(
            "src/repro/scenario/specs/x.toml", 'kind = "accuracy_grid"\n'
        )
        assert s.registrations["toml_kind"] == "accuracy_grid"

    def test_rng_site_capture(self):
        s = summarize_source(
            "src/repro/sim/r.py",
            "from repro.utils.seeding import seeded_generator\n"
            "def f(seed):\n"
            "    return seeded_generator(seed)\n",
        )
        (ctor, line, _col, seed_desc, func) = s.rng_sites[0]
        assert ctor.endswith("seeded_generator")
        assert line == 3 and func == "f" and seed_desc == ["name", "seed"]

    def test_summary_json_roundtrip(self):
        s = summarize_source(
            "src/repro/sim/j.py",
            "import repro.obs\ndef f(x):\n    y = x\n    return y\n",
        )
        restored = type(s).from_json(json.loads(json.dumps(s.to_json())))
        assert restored.imports == s.imports
        assert restored.functions == s.functions
        assert restored.module == s.module


# ----------------------------------------------------------------------
# seeded mutations: each cross-module rule catches its target defect
# ----------------------------------------------------------------------
class TestArchRule:
    def test_upward_import_is_caught(self):
        project = project_from(
            {
                "src/repro/aggregation/bad.py": "from repro.cli import main\n"
            }
        )
        findings = arch.run(project)
        assert [f.rule for f in findings] == ["ARCH001"]
        assert "repro.aggregation -> repro.cli" in findings[0].message
        assert findings[0].line == 1

    def test_downward_and_same_layer_imports_pass(self):
        project = project_from(
            {
                "src/repro/pipeline/ok.py": (
                    "from repro.consensus import registry\n"
                    "from repro.experiments import setup\n"  # same layer? no: up
                ),
            }
        )
        # pipeline -> consensus is downward; pipeline -> experiments is
        # same-layer (both orchestration) — neither may fire.
        assert arch.run(project) == []

    def test_type_only_import_is_exempt(self):
        project = project_from(
            {
                "src/repro/aggregation/typed.py": (
                    "from typing import TYPE_CHECKING\n"
                    "if TYPE_CHECKING:\n"
                    "    from repro.cli import main\n"
                )
            }
        )
        assert arch.run(project) == []

    def test_unknown_package_is_flagged(self):
        project = project_from(
            {"src/repro/newpkg/mod.py": "import os\n"}
        )
        findings = arch.run(project)
        assert findings and findings[0].rule == "ARCH001"
        assert "not in the layering contract" in findings[0].message

    def test_contract_matches_real_tree(self):
        """The shipped src/ tree satisfies the declared contract."""
        result = run_engine(
            [str(REPO / "src")], select={"ARCH001"}, use_cache=False
        )
        assert result.findings == []


class TestSeedflowRule:
    HELPER = (
        "from repro.utils.seeding import seeded_generator\n"
        "def make_stream(seed):\n"
        "    return seeded_generator(seed)\n"
    )

    def test_direct_literal_is_caught(self):
        project = project_from(
            {
                "src/repro/sim/bad.py": (
                    "from repro.utils.seeding import seeded_generator\n"
                    "rng = seeded_generator(42)\n"
                )
            }
        )
        findings = seedflow.run(project)
        assert [f.rule for f in findings] == ["DET005"]
        assert findings[0].line == 2

    def test_literal_through_helper_is_caught_at_entry(self):
        project = project_from(
            {
                "src/repro/sim/helper.py": self.HELPER,
                "src/repro/core/caller.py": (
                    "from repro.sim.helper import make_stream\n"
                    "stream = make_stream(1234)\n"
                ),
            }
        )
        findings = seedflow.run(project)
        assert [f.rule for f in findings] == ["DET005"]
        # Reported where the literal enters, not where the RNG is built.
        assert findings[0].path == "src/repro/core/caller.py"
        assert findings[0].line == 2
        assert "1234" in findings[0].message

    def test_config_seed_is_trusted(self):
        project = project_from(
            {
                "src/repro/sim/helper.py": self.HELPER,
                "src/repro/core/caller.py": (
                    "from repro.sim.helper import make_stream\n"
                    "def build(config):\n"
                    "    return make_stream(config.seed)\n"
                ),
            }
        )
        assert seedflow.run(project) == []

    def test_derive_seed_is_trusted(self):
        project = project_from(
            {
                "src/repro/sim/ok.py": (
                    "from repro.utils.seeding import derive_seed, seeded_generator\n"
                    "def f(root):\n"
                    "    return seeded_generator(derive_seed(root, 'f'))\n"
                )
            }
        )
        assert seedflow.run(project) == []

    def test_literal_from_test_file_is_allowed(self):
        project = project_from(
            {
                "src/repro/sim/helper.py": self.HELPER,
                "tests/test_caller.py": (
                    "from repro.sim.helper import make_stream\n"
                    "stream = make_stream(7)\n"
                ),
            }
        )
        assert seedflow.run(project) == []

    def test_local_variable_literal_is_caught(self):
        project = project_from(
            {
                "src/repro/sim/local.py": (
                    "from repro.utils.seeding import seeded_generator\n"
                    "def f():\n"
                    "    seed = 99\n"
                    "    return seeded_generator(seed)\n"
                )
            }
        )
        findings = seedflow.run(project)
        assert [f.rule for f in findings] == ["DET005"]

    def test_real_tree_is_clean(self):
        result = run_engine(
            [str(REPO / "src")], select={"DET005"}, use_cache=False
        )
        assert result.findings == []


class TestRegistryRule:
    def test_unregistered_oracle_is_caught(self):
        project = project_from(
            {
                "src/repro/aggregation/orphan.py": (
                    "from repro.aggregation.registry import register_aggregator\n"
                    "@register_aggregator('lonely')\n"
                    "class Lonely:\n"
                    "    pass\n"
                )
            }
        )
        findings = registry.run(project)
        assert [f.rule for f in findings] == ["REG001"]
        assert "lonely" in findings[0].message

    def test_paired_registrations_pass(self):
        project = project_from(
            {
                "src/repro/aggregation/paired.py": (
                    "from repro.aggregation.registry import ("
                    "register_aggregator, register_reference)\n"
                    "@register_aggregator('pair')\n"
                    "class Fast:\n"
                    "    pass\n"
                    "@register_reference('pair')\n"
                    "class Ref:\n"
                    "    pass\n"
                )
            }
        )
        assert registry.run(project) == []

    def test_dynamic_differential_coverage_satisfies(self):
        project = project_from(
            {
                "src/repro/aggregation/paired.py": (
                    "from repro.aggregation.registry import ("
                    "register_aggregator, register_reference)\n"
                    "@register_aggregator('pair')\n"
                    "class Fast:\n"
                    "    pass\n"
                    "@register_reference('pair')\n"
                    "class Ref:\n"
                    "    pass\n"
                ),
                "tests/test_diff.py": (
                    "from repro.aggregation import available_aggregators\n"
                    "ALL = available_aggregators()\n"
                ),
            }
        )
        assert registry.run(project) == []

    def test_uncovered_consensus_backend_is_caught(self):
        project = project_from(
            {
                "src/repro/consensus/registry.py": (
                    "_FACTORIES = {'voting': VotingConsensus, "
                    "'ghost': GhostConsensus}\n"
                ),
                "tests/test_props.py": (
                    "from repro.consensus import VotingConsensus\n"
                    "def test_v():\n"
                    "    VotingConsensus()\n"
                ),
            }
        )
        findings = registry.run(project)
        assert [f.rule for f in findings] == ["REG001"]
        assert "ghost" in findings[0].message

    def test_kind_without_branch_or_spec_is_caught(self):
        project = project_from(
            {
                "src/repro/scenario/spec.py": "KINDS = ('a_grid', 'b_curve')\n",
                "src/repro/scenario/grid.py": (
                    "def expand(spec):\n"
                    "    if spec.kind == 'a_grid':\n"
                    "        return []\n"
                ),
            }
        )
        findings = registry.run(project)
        assert [f.rule for f in findings] == ["REG001"]
        assert "b_curve" in findings[0].message and "runner branch" in findings[0].message

    def test_unknown_spec_kind_is_caught(self):
        project = project_from(
            {
                "src/repro/scenario/spec.py": "KINDS = ('a_grid',)\n",
                "src/repro/scenario/grid.py": (
                    "def expand(spec):\n"
                    "    if spec.kind == 'a_grid':\n"
                    "        return []\n"
                ),
            }
        )
        toml = summarize_toml(
            "src/repro/scenario/specs/odd.toml", 'kind = "z_grid"\n'
        )
        findings = registry.run(
            Project(list(project.summaries) + [toml])
        )
        messages = [f.message for f in findings]
        assert any("unknown kind 'z_grid'" in m for m in messages)
        # and a_grid now lacks a shipped spec:
        assert any("no shipped spec" in m for m in messages)

    def test_real_tree_is_clean(self):
        result = run_engine(
            [str(REPO / "src"), str(REPO / "tests")],
            select={"REG001"},
            use_cache=False,
        )
        assert result.findings == []


# ----------------------------------------------------------------------
# fixtures drive --self-test
# ----------------------------------------------------------------------
def test_self_test_passes():
    assert self_test() == []


def test_select_unknown_rule_raises():
    with pytest.raises(ValueError, match="unknown rules"):
        run_engine([str(REPO / "src")], select={"NOPE999"}, use_cache=False)


def test_discovery_skips_fixture_tree_and_finds_specs():
    files = discover([str(REPO / "tools"), str(REPO / "src")])
    assert not any("abdlint/fixtures" in f for f in files)
    assert any(f.endswith("specs/table5.toml") for f in files)


# ----------------------------------------------------------------------
# SARIF output
# ----------------------------------------------------------------------
def test_sarif_schema_smoke(tmp_path):
    bad = tmp_path / "src" / "repro" / "sim" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(
        "from repro.utils.seeding import seeded_generator\n"
        "rng = seeded_generator(5)\n"
    )
    result = run_engine([str(tmp_path)], use_cache=False)
    assert any(f.rule == "DET005" for f in result.findings)
    log = to_sarif(result.findings, ENGINE_VERSION)
    assert log["version"] == "2.1.0"
    assert "sarif-schema-2.1.0" in log["$schema"]
    run = log["runs"][0]
    assert run["tool"]["driver"]["name"] == "abdlint"
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert rule_ids == set(RULES)
    res = run["results"][0]
    assert res["ruleId"] == "DET005"
    assert res["ruleIndex"] >= 0
    loc = res["locations"][0]["physicalLocation"]
    assert loc["region"]["startLine"] == 2
    assert loc["artifactLocation"]["uri"].endswith("bad.py")
    # round-trips through json
    json.loads(json.dumps(log))


# ----------------------------------------------------------------------
# incremental cache
# ----------------------------------------------------------------------
class TestCache:
    def _tree(self, tmp_path, n_files=40, body_reps=30):
        src = tmp_path / "src" / "repro" / "sim"
        src.mkdir(parents=True)
        body = (
            "def fn_{i}_{j}(a, b=1):\n"
            "    c = a + b\n"
            "    d = sorted([c, a, b])\n"
            "    return d[0]\n"
        )
        for i in range(n_files):
            text = "\n".join(
                body.format(i=i, j=j) for j in range(body_reps)
            )
            (src / f"mod_{i}.py").write_text(text)
        return src

    def test_cache_serves_identical_findings(self, tmp_path):
        src = tmp_path / "src" / "repro" / "sim"
        src.mkdir(parents=True)
        bad = src / "bad.py"
        bad.write_text(
            "from repro.utils.seeding import seeded_generator\n"
            "rng = seeded_generator(3)\n"
        )
        cache_dir = str(tmp_path / ".abdlint_cache")
        cold = run_engine([str(src)], cache_dir=cache_dir)
        warm = run_engine([str(src)], cache_dir=cache_dir)
        assert cold.findings == warm.findings
        assert warm.cache.hits == 1 and warm.cache.misses == 0

    def test_edit_invalidates_and_refreshes(self, tmp_path):
        src = tmp_path / "src" / "repro" / "sim"
        src.mkdir(parents=True)
        mod = src / "mod.py"
        mod.write_text(
            "from repro.utils.seeding import seeded_generator\n"
            "rng = seeded_generator(3)\n"
        )
        cache_dir = str(tmp_path / ".abdlint_cache")
        first = run_engine([str(src)], cache_dir=cache_dir)
        assert any(f.rule == "DET005" for f in first.findings)
        # fix the violation; the stale cached finding must not survive
        mod.write_text(
            "from repro.utils.seeding import seeded_generator\n"
            "def make(config):\n"
            "    return seeded_generator(config.seed)\n"
        )
        second = run_engine([str(src)], cache_dir=cache_dir)
        assert second.findings == []
        assert second.cache.misses == 1

    def test_touch_without_edit_still_hits(self, tmp_path):
        src = self._tree(tmp_path, n_files=1, body_reps=3)
        cache_dir = str(tmp_path / ".abdlint_cache")
        run_engine([str(src)], cache_dir=cache_dir)
        path = next(src.glob("*.py"))
        path.touch()  # new mtime, same bytes -> sha256 fallback hits
        warm = run_engine([str(src)], cache_dir=cache_dir)
        assert warm.cache.hits == 1 and warm.cache.misses == 0

    def test_engine_version_bump_invalidates(self, tmp_path):
        src = self._tree(tmp_path, n_files=1, body_reps=3)
        cache_dir = tmp_path / ".abdlint_cache"
        run_engine([str(src)], cache_dir=str(cache_dir))
        blob = json.loads((cache_dir / "summaries.json").read_text())
        blob["engine_version"] = "0.0.0-stale"
        (cache_dir / "summaries.json").write_text(json.dumps(blob))
        warm = run_engine([str(src)], cache_dir=str(cache_dir))
        assert warm.cache.misses == 1

    def test_warm_run_is_under_quarter_of_cold(self, tmp_path):
        # Large bodies so cold-run parse cost dwarfs the fixed per-run
        # overhead (discovery + project pass) the cache cannot remove.
        src = self._tree(tmp_path, body_reps=120)
        cache_dir = str(tmp_path / ".abdlint_cache")
        # Wall-clock is the quantity under test here: the assertion is
        # about real parse time saved, not simulated time.
        t0 = time.perf_counter()  # abdlint: ignore[DET002]
        cold = run_engine([str(src)], cache_dir=cache_dir)
        cold_s = time.perf_counter() - t0  # abdlint: ignore[DET002]
        t0 = time.perf_counter()  # abdlint: ignore[DET002]
        warm = run_engine([str(src)], cache_dir=cache_dir)
        warm_s = time.perf_counter() - t0  # abdlint: ignore[DET002]
        assert cold.cache.misses == 40 and warm.cache.hits == 40
        assert cold.findings == warm.findings
        assert warm_s < 0.25 * cold_s, (
            f"warm {warm_s:.3f}s !< 25% of cold {cold_s:.3f}s"
        )

    def test_cache_flush_is_atomic_json(self, tmp_path):
        src = self._tree(tmp_path, n_files=2, body_reps=2)
        cache_dir = tmp_path / ".abdlint_cache"
        run_engine([str(src)], cache_dir=str(cache_dir))
        blob = json.loads((cache_dir / "summaries.json").read_text())
        assert blob["engine_version"] == ENGINE_VERSION
        assert len(blob["entries"]) == 2

    def test_corrupt_cache_is_ignored(self, tmp_path):
        src = self._tree(tmp_path, n_files=1, body_reps=2)
        cache_dir = tmp_path / ".abdlint_cache"
        cache_dir.mkdir()
        (cache_dir / "summaries.json").write_text("{not json")
        result = run_engine([str(src)], cache_dir=str(cache_dir))
        assert result.cache.misses == 1
        cache = SummaryCache(str(cache_dir))
        assert cache.lookup(str(next(src.glob("*.py"))))[0] is not None
