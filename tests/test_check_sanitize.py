"""Runtime sanitizer semantics: gating, provenance, and the guards wired
into aggregation, consensus, attacks and the NN forward pass."""

from __future__ import annotations

import numpy as np
import pytest

from repro.aggregation import get_aggregator
from repro.attacks import get_attack
from repro.check import sanitize
from repro.check.sanitize import (
    OVERFLOW_LIMIT,
    SanitizerError,
    assert_finite,
    current_provenance,
    provenance,
    sanitized,
)
from repro.consensus.voting import VotingConsensus


class TestGating:
    def test_autouse_fixture_enables_checks(self):
        assert sanitize.enabled()

    def test_sanitized_scope_restores(self):
        with sanitized(False):
            assert not sanitize.enabled()
            with sanitized(True):
                assert sanitize.enabled()
            assert not sanitize.enabled()
        assert sanitize.enabled()

    def test_enable_disable(self):
        sanitize.disable()
        assert not sanitize.enabled()
        sanitize.enable()
        assert sanitize.enabled()

    def test_disabled_guard_never_inspects(self):
        bad = np.array([np.nan, np.inf])
        with sanitized(False):
            assert_finite(bad, "ignored payload")  # must not raise

    def test_env_parser(self):
        import os

        for value, expected in [
            ("1", True),
            ("true", True),
            ("ON", True),
            ("yes", True),
            ("", False),
            ("0", False),
            ("off", False),
        ]:
            os.environ["REPRO_SANITIZE"] = value
            try:
                assert sanitize._env_enabled() is expected, value
            finally:
                del os.environ["REPRO_SANITIZE"]


class TestAssertFinite:
    def test_finite_passes(self):
        assert_finite(np.zeros(8), "zeros")
        assert_finite(np.full(4, OVERFLOW_LIMIT), "at the limit")

    def test_integer_and_bool_skipped(self):
        assert_finite(np.arange(5), "ints")
        assert_finite(np.ones(3, dtype=bool), "bools")

    def test_nan_counted(self):
        values = np.array([0.0, np.nan, np.nan, 1.0])
        with pytest.raises(SanitizerError, match=r"2 NaN of 4 values"):
            assert_finite(values, "payload")

    def test_inf_counted(self):
        with pytest.raises(SanitizerError, match=r"1 Inf"):
            assert_finite(np.array([np.inf, 0.0]), "payload")

    def test_overflow_range_counted(self):
        with pytest.raises(SanitizerError, match="overflow-range"):
            assert_finite(np.array([1e151]), "payload")
        assert_finite(np.array([1e149]), "payload")  # under the limit

    def test_custom_limit(self):
        with pytest.raises(SanitizerError):
            assert_finite(np.array([10.0]), "payload", limit=5.0)

    def test_is_floating_point_error(self):
        with pytest.raises(FloatingPointError):
            assert_finite(np.array([np.nan]), "payload")

    def test_complex_checked(self):
        with pytest.raises(SanitizerError):
            assert_finite(np.array([complex(np.nan, 0)]), "payload")


class TestProvenance:
    def test_explicit_kwargs_in_message_and_attrs(self):
        with pytest.raises(SanitizerError) as excinfo:
            assert_finite(
                np.array([np.nan]),
                "aggregation input",
                rule="krum",
                node_id=7,
                round_index=3,
            )
        err = excinfo.value
        assert err.what == "aggregation input"
        assert (err.rule, err.node_id, err.round_index) == ("krum", 7, 3)
        message = str(err)
        assert "rule=krum" in message
        assert "node=7" in message
        assert "round=3" in message

    def test_ambient_context_merged(self):
        with provenance(node_id=2, round_index=5):
            with pytest.raises(SanitizerError) as excinfo:
                assert_finite(np.array([np.inf]), "forward output")
        assert excinfo.value.node_id == 2
        assert excinfo.value.round_index == 5

    def test_inner_scope_wins(self):
        with provenance(node_id=1, round_index=0):
            with provenance(node_id=9):
                assert current_provenance() == {"node_id": 9, "round_index": 0}
        assert current_provenance() == {}

    def test_explicit_beats_ambient(self):
        with provenance(rule="ambient"):
            with pytest.raises(SanitizerError) as excinfo:
                assert_finite(np.array([np.nan]), "x", rule="explicit")
        assert excinfo.value.rule == "explicit"

    def test_stack_unwinds_on_error(self):
        with pytest.raises(RuntimeError):
            with provenance(node_id=4):
                raise RuntimeError("boom")
        assert current_provenance() == {}


class TestWiredGuards:
    def test_aggregation_input_guard(self):
        # NaN/Inf are rejected by stack validation already; the sanitizer
        # adds the latent-overflow check on values that are still finite.
        updates = [np.full(4, 1e160), np.full(4, 1e160)]
        with pytest.raises(SanitizerError, match="aggregation input"):
            get_aggregator("fedavg")(updates)

    def test_aggregation_guard_off_when_disabled(self):
        updates = [np.full(4, 1e160), np.full(4, 1e160)]
        with sanitized(False):
            out = get_aggregator("fedavg")(updates)
        assert np.abs(out).max() > OVERFLOW_LIMIT

    def test_consensus_proposal_guard(self):
        proposals = np.ones((4, 3))
        proposals[1, 2] = np.inf
        with pytest.raises(SanitizerError, match="consensus proposals"):
            VotingConsensus().agree(proposals, rng=np.random.default_rng(0))

    def test_attack_output_guard(self):
        attack = get_attack("scaling", factor=1e200)
        honest = np.ones((3, 4))
        rng = np.random.default_rng(0)
        with pytest.raises(SanitizerError, match="attack output"):
            attack(honest, n_byzantine=1, rng=rng)

    def test_forward_guard(self, tiny_model):
        x = np.full((2, 64), 1e200)
        with pytest.raises(SanitizerError, match="forward output"):
            tiny_model.forward(x)
