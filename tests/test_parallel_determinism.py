"""Bit-identity regressions for the parallel backend across worker counts.

The contract of :mod:`repro.parallel` is that the worker count is a pure
wall-clock knob: ``workers=N`` must reproduce the serial run bit for bit —
model state, losses, sweep cells, and the merged observability trace.
These tests pin that contract at both fan-out surfaces:

* **round-level** — the ABD-HFL trainer's per-node local training,
  dispatched to a persistent spawn pool (``LocalTrainingPool``) with the
  full RNG/optimizer state round-trip;
* **sweep-level** — experiment drivers sharding independent cells through
  :func:`repro.parallel.parallel_map` with ordered reduction and per-task
  trace scoping.

Marked ``slow``: spawn pools pay a fresh-interpreter import per worker.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.config import ABDHFLConfig
from repro.core.local import LocalTrainer
from repro.core.pool import DeviceSpec, LocalTrainingPool, TrainJob, _train_shard
from repro.core.trainer import ABDHFLTrainer
from repro.experiments.matrix import run_defence_matrix
from repro.obs import Tracer, trace
from repro.parallel import ParameterSlab
from repro.utils.seeding import seeded_generator
from test_core_trainer import default_config, small_setup
from test_determinism_subprocess import (
    TRACE_HASH_SUFFIX,
    TRAINER_CHILD,
    _run_child,
)

# The fault-injected 3-round ABD-HFL child from the cross-process
# determinism suite leaves ``ABDHFLConfig.workers`` unset, so the
# ``REPRO_WORKERS`` environment gate selects the backend — the exact
# production surface a user flips.
TABLE5_CHILD = """
import hashlib
import numpy as np
from repro.experiments import ExperimentConfig
from repro.experiments.table5 import run_table5

cfg = ExperimentConfig(
    n_levels=2, cluster_size=4, n_top=2, image_side=8,
    samples_per_client=50, n_test=200, n_rounds=2, hidden=(16,),
)
cells = run_table5(
    cfg, fractions=(0.0, 0.5), distributions=(True,), attacks=("type1",),
    n_runs=1,
)
digest = hashlib.sha256()
for c in cells:
    digest.update(np.float64(c.malicious_fraction).tobytes())
    digest.update(np.float64(c.abdhfl_accuracy).tobytes())
    digest.update(np.float64(c.vanilla_accuracy).tobytes())
print(digest.hexdigest())
"""


@pytest.mark.slow
def test_parallel_training_is_bit_identical_to_serial():
    """``REPRO_WORKERS=4`` must hash the fault-injected 3-round training
    exactly like the serial baseline: same global model, same per-round
    accuracy/loss stream."""
    assert _run_child(TRAINER_CHILD, workers=4) == _run_child(
        TRAINER_CHILD, workers=1
    )


@pytest.mark.slow
def test_parallel_trainer_state_matches_serial_in_process():
    """Beyond the output hash: every per-device RNG state, optimizer step
    count and parameter vector must round-trip unchanged through the
    worker pool."""

    def run(workers: int | None) -> ABDHFLTrainer:
        hierarchy, datasets, model, test = small_setup(seed=3)
        cfg = default_config(workers=workers)
        trainer = ABDHFLTrainer(
            hierarchy, datasets, model.clone(), cfg, test, seed=3
        )
        trainer.run(2)
        return trainer

    serial = run(None)
    parallel = run(2)
    try:
        assert parallel.workers == 2
        np.testing.assert_array_equal(
            serial.global_model, parallel.global_model
        )
        assert sorted(serial.trainers) == sorted(parallel.trainers)
        for device in sorted(serial.trainers):
            ref, par = serial.trainers[device], parallel.trainers[device]
            np.testing.assert_array_equal(
                ref.model.get_flat(), par.model.get_flat()
            )
            assert ref.last_losses == par.last_losses
            assert ref.rng.bit_generator.state == par.rng.bit_generator.state
            ref_opt = ref.export_state()["optimizer"]
            par_opt = par.export_state()["optimizer"]
            assert ref_opt["step_count"] == par_opt["step_count"]
            if ref_opt["velocity"] is None:
                assert par_opt["velocity"] is None
            else:
                for rv, pv in zip(ref_opt["velocity"], par_opt["velocity"]):
                    np.testing.assert_array_equal(rv, pv)
        assert [r.test_accuracy for r in serial.history] == [
            r.test_accuracy for r in parallel.history
        ]
    finally:
        parallel.close()
        serial.close()


@pytest.mark.slow
def test_config_workers_validated_and_serial_by_default():
    with pytest.raises(ValueError):
        ABDHFLConfig(workers=0)
    hierarchy, datasets, model, test = small_setup()
    trainer = ABDHFLTrainer(hierarchy, datasets, model, default_config(), test)
    assert trainer.workers == 1
    assert trainer._pool is None


@pytest.mark.slow
def test_matrix_cells_identical_across_worker_counts():
    kwargs = dict(
        defences=("median", "trimmed_mean", "krum"),
        attacks=("sign_flip", "scaling"),
        byzantine_fraction=0.25,
        n_trials=2,
    )
    serial = run_defence_matrix(workers=1, **kwargs)
    sharded = run_defence_matrix(workers=3, **kwargs)
    # Dataclass equality is exact: the gap floats must match bit for bit,
    # in the same (defence, attack) order.
    assert serial == sharded


@pytest.mark.slow
def test_matrix_trace_is_byte_identical_across_worker_counts():
    """Per-worker trace shards merged in input order must serialise to
    exactly the serial trace — the schema-valid JSONL a report consumes."""

    def jsonl(workers: int) -> str:
        with trace.scoped(Tracer()) as tr:
            run_defence_matrix(
                defences=("median", "krum"),
                attacks=("sign_flip",),
                n_trials=1,
                workers=workers,
            )
        assert tr.events, "traced sweep recorded nothing"
        return tr.to_jsonl()

    assert jsonl(1) == jsonl(2)


def _segment_exists(name: str) -> bool:
    return os.path.exists(os.path.join("/dev/shm", name))


ON_POSIX_SHM = os.path.isdir("/dev/shm")


class TestParameterSlab:
    """Unit coverage for the shared-memory slab the pool rides on."""

    def test_attach_sees_owner_bytes_and_generation(self):
        with ParameterSlab.create(3, 5) as owner:
            owner.array[:] = np.arange(15, dtype=np.float64).reshape(3, 5)
            owner.generation = 7
            peer = ParameterSlab.attach(owner.name, 3, 5)
            try:
                assert peer.generation == 7
                np.testing.assert_array_equal(peer.array, owner.array)
                peer.array[1, 2] = -4.5  # writes flow back to the owner
                assert owner.array[1, 2] == -4.5
            finally:
                peer.close()

    def test_close_is_idempotent_and_access_after_close_raises(self):
        slab = ParameterSlab.create(2, 2)
        slab.unlink()
        slab.close()
        slab.close()
        for attr in ("array", "generation", "name"):
            with pytest.raises(RuntimeError, match="closed"):
                getattr(slab, attr)

    def test_unlink_after_close_is_a_programming_error(self):
        slab = ParameterSlab.create(2, 2)
        name = slab.name
        slab.close()
        with pytest.raises(RuntimeError, match="unlink first"):
            slab.unlink()
        # The segment leaked by construction here; reap it directly.
        if ON_POSIX_SHM and _segment_exists(name):
            os.unlink(os.path.join("/dev/shm", name))

    def test_attacher_never_unlinks(self):
        owner = ParameterSlab.create(2, 3)
        name = owner.name
        peer = ParameterSlab.attach(name, 2, 3)
        with peer:  # exit calls unlink() then close(); unlink must no-op
            pass
        if ON_POSIX_SHM:
            assert _segment_exists(name), "attacher removed the segment"
        owner.unlink()
        owner.close()
        if ON_POSIX_SHM:
            assert not _segment_exists(name)

    def test_rejects_empty_shapes(self):
        with pytest.raises(ValueError, match="positive shape"):
            ParameterSlab.create(0, 4)


def _fanout_parents(
    specs: list[DeviceSpec], model
) -> dict[int, LocalTrainer]:
    return {
        spec.device_id: LocalTrainer(
            device_id=spec.device_id,
            dataset=spec.dataset,
            model=model.clone(),
            config=spec.config,
            rng=seeded_generator(1000 + spec.device_id),
        )
        for spec in specs
    }


def _run_fanout_rounds(
    model,
    specs: list[DeviceSpec],
    pool: LocalTrainingPool | None,
    n_rounds: int = 2,
) -> tuple[dict[int, np.ndarray], dict[int, LocalTrainer]]:
    """Drive ``n_rounds`` of per-device SGD serially or through ``pool``,
    chaining each round's start from the mean of the previous round."""
    parents = _fanout_parents(specs, model)
    start = model.get_flat()
    vectors: dict[int, np.ndarray] = {}
    for _ in range(n_rounds):
        if pool is None:
            for spec in specs:
                vectors[spec.device_id] = parents[spec.device_id].train_round(
                    start, None
                )
        else:
            jobs = [
                TrainJob(
                    device_id=spec.device_id,
                    start_vector=start,
                    arrival=None,
                    state=parents[spec.device_id].export_state_delta(),
                )
                for spec in specs
            ]
            results = pool.train_round(jobs)
            for spec in specs:
                result = results[spec.device_id]
                parents[spec.device_id].import_state_delta(result.state)
                parents[spec.device_id].last_losses = list(result.losses)
                vectors[spec.device_id] = result.vector
        start = np.mean(np.stack([vectors[s.device_id] for s in specs]), axis=0)
    return vectors, parents


@pytest.mark.slow
def test_shm_and_pickled_transports_bit_identical_to_serial():
    """The transport (shared-memory slabs vs pickled vectors) and the
    worker count only move bytes: per-device vectors, losses and RNG /
    optimiser states must match the serial run bit for bit."""
    hierarchy, datasets, model, test = small_setup(seed=11)
    cfg = default_config().training
    specs = [DeviceSpec(cid, datasets[cid], cfg) for cid in sorted(datasets)[:6]]

    serial_vecs, serial_parents = _run_fanout_rounds(model, specs, pool=None)
    for use_shm in (True, False):
        pool = LocalTrainingPool(model, specs, workers=3, use_shm=use_shm)
        slab_names = (
            [slab.name for slab in pool._slabs] if pool.uses_shm else []
        )
        try:
            assert pool.uses_shm is use_shm
            vecs, parents = _run_fanout_rounds(model, specs, pool=pool)
        finally:
            pool.close()
        for name in slab_names:  # leak check: close() must unlink
            if ON_POSIX_SHM:
                assert not _segment_exists(name), f"leaked segment {name}"
        for spec in specs:
            cid = spec.device_id
            label = f"device {cid} (use_shm={use_shm})"
            assert serial_vecs[cid].tobytes() == vecs[cid].tobytes(), label
            assert (
                serial_parents[cid].last_losses == parents[cid].last_losses
            ), label
            assert (
                serial_parents[cid].export_state_delta()[:5]
                == parents[cid].export_state_delta()[:5]
            ), label


@pytest.mark.slow
def test_stale_generation_jobs_fail_loudly():
    """A job whose generation does not match the slab stamp must be
    refused by the worker, not silently trained on stale bytes."""
    hierarchy, datasets, model, test = small_setup(seed=13)
    cfg = default_config().training
    specs = [DeviceSpec(cid, datasets[cid], cfg) for cid in sorted(datasets)[:2]]
    pool = LocalTrainingPool(model, specs, workers=2, use_shm=True)
    try:
        parents = _fanout_parents(specs, model)
        start = model.get_flat()
        jobs = [
            TrainJob(
                device_id=spec.device_id,
                start_vector=start,
                arrival=None,
                state=parents[spec.device_id].export_state_delta(),
            )
            for spec in specs
        ]
        pool.train_round(jobs)  # legitimate round: generation = 1
        stale = TrainJob(
            device_id=specs[0].device_id,
            start_vector=None,
            arrival=None,
            state=parents[specs[0].device_id].export_state_delta(),
            row=0,
            generation=999,
        )
        assert pool._pool is not None
        with pytest.raises(RuntimeError, match="stale-generation"):
            pool._pool.apply(_train_shard, (([stale], False),))
    finally:
        pool.close()


@pytest.mark.slow
def test_pool_close_unlinks_segments_and_is_idempotent():
    hierarchy, datasets, model, test = small_setup(seed=17)
    cfg = default_config().training
    specs = [DeviceSpec(cid, datasets[cid], cfg) for cid in sorted(datasets)[:2]]
    pool = LocalTrainingPool(model, specs, workers=2, use_shm=True)
    assert pool.uses_shm
    names = [slab.name for slab in pool._slabs]
    if ON_POSIX_SHM:
        assert all(_segment_exists(name) for name in names)
    pool.close()
    pool.close()  # idempotent
    if ON_POSIX_SHM:
        assert not any(_segment_exists(name) for name in names)
    with pytest.raises(RuntimeError, match="closed"):
        pool.train_round([])


@pytest.mark.slow
def test_table5_results_and_trace_worker_invariant():
    """The sweep surface end to end, driven purely by the environment:
    ``REPRO_WORKERS=4`` under ``REPRO_TRACE`` must reproduce the serial
    cells *and* the serial trace byte for byte."""
    serial = _run_child(TABLE5_CHILD + TRACE_HASH_SUFFIX, trace="1", workers=1)
    sharded = _run_child(TABLE5_CHILD + TRACE_HASH_SUFFIX, trace="1", workers=4)
    assert serial == sharded  # result digest AND trace hash
