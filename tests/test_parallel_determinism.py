"""Bit-identity regressions for the parallel backend across worker counts.

The contract of :mod:`repro.parallel` is that the worker count is a pure
wall-clock knob: ``workers=N`` must reproduce the serial run bit for bit —
model state, losses, sweep cells, and the merged observability trace.
These tests pin that contract at both fan-out surfaces:

* **round-level** — the ABD-HFL trainer's per-node local training,
  dispatched to a persistent spawn pool (``LocalTrainingPool``) with the
  full RNG/optimizer state round-trip;
* **sweep-level** — experiment drivers sharding independent cells through
  :func:`repro.parallel.parallel_map` with ordered reduction and per-task
  trace scoping.

Marked ``slow``: spawn pools pay a fresh-interpreter import per worker.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ABDHFLConfig
from repro.core.trainer import ABDHFLTrainer
from repro.experiments.matrix import run_defence_matrix
from repro.obs import Tracer, trace
from test_core_trainer import default_config, small_setup
from test_determinism_subprocess import (
    TRACE_HASH_SUFFIX,
    TRAINER_CHILD,
    _run_child,
)

# The fault-injected 3-round ABD-HFL child from the cross-process
# determinism suite leaves ``ABDHFLConfig.workers`` unset, so the
# ``REPRO_WORKERS`` environment gate selects the backend — the exact
# production surface a user flips.
TABLE5_CHILD = """
import hashlib
import numpy as np
from repro.experiments import ExperimentConfig
from repro.experiments.table5 import run_table5

cfg = ExperimentConfig(
    n_levels=2, cluster_size=4, n_top=2, image_side=8,
    samples_per_client=50, n_test=200, n_rounds=2, hidden=(16,),
)
cells = run_table5(
    cfg, fractions=(0.0, 0.5), distributions=(True,), attacks=("type1",),
    n_runs=1,
)
digest = hashlib.sha256()
for c in cells:
    digest.update(np.float64(c.malicious_fraction).tobytes())
    digest.update(np.float64(c.abdhfl_accuracy).tobytes())
    digest.update(np.float64(c.vanilla_accuracy).tobytes())
print(digest.hexdigest())
"""


@pytest.mark.slow
def test_parallel_training_is_bit_identical_to_serial():
    """``REPRO_WORKERS=4`` must hash the fault-injected 3-round training
    exactly like the serial baseline: same global model, same per-round
    accuracy/loss stream."""
    assert _run_child(TRAINER_CHILD, workers=4) == _run_child(
        TRAINER_CHILD, workers=1
    )


@pytest.mark.slow
def test_parallel_trainer_state_matches_serial_in_process():
    """Beyond the output hash: every per-device RNG state, optimizer step
    count and parameter vector must round-trip unchanged through the
    worker pool."""

    def run(workers: int | None) -> ABDHFLTrainer:
        hierarchy, datasets, model, test = small_setup(seed=3)
        cfg = default_config(workers=workers)
        trainer = ABDHFLTrainer(
            hierarchy, datasets, model.clone(), cfg, test, seed=3
        )
        trainer.run(2)
        return trainer

    serial = run(None)
    parallel = run(2)
    try:
        assert parallel.workers == 2
        np.testing.assert_array_equal(
            serial.global_model, parallel.global_model
        )
        assert sorted(serial.trainers) == sorted(parallel.trainers)
        for device in sorted(serial.trainers):
            ref, par = serial.trainers[device], parallel.trainers[device]
            np.testing.assert_array_equal(
                ref.model.get_flat(), par.model.get_flat()
            )
            assert ref.last_losses == par.last_losses
            assert ref.rng.bit_generator.state == par.rng.bit_generator.state
            ref_opt = ref.export_state()["optimizer"]
            par_opt = par.export_state()["optimizer"]
            assert ref_opt["step_count"] == par_opt["step_count"]
            if ref_opt["velocity"] is None:
                assert par_opt["velocity"] is None
            else:
                for rv, pv in zip(ref_opt["velocity"], par_opt["velocity"]):
                    np.testing.assert_array_equal(rv, pv)
        assert [r.test_accuracy for r in serial.history] == [
            r.test_accuracy for r in parallel.history
        ]
    finally:
        parallel.close()
        serial.close()


@pytest.mark.slow
def test_config_workers_validated_and_serial_by_default():
    with pytest.raises(ValueError):
        ABDHFLConfig(workers=0)
    hierarchy, datasets, model, test = small_setup()
    trainer = ABDHFLTrainer(hierarchy, datasets, model, default_config(), test)
    assert trainer.workers == 1
    assert trainer._pool is None


@pytest.mark.slow
def test_matrix_cells_identical_across_worker_counts():
    kwargs = dict(
        defences=("median", "trimmed_mean", "krum"),
        attacks=("sign_flip", "scaling"),
        byzantine_fraction=0.25,
        n_trials=2,
    )
    serial = run_defence_matrix(workers=1, **kwargs)
    sharded = run_defence_matrix(workers=3, **kwargs)
    # Dataclass equality is exact: the gap floats must match bit for bit,
    # in the same (defence, attack) order.
    assert serial == sharded


@pytest.mark.slow
def test_matrix_trace_is_byte_identical_across_worker_counts():
    """Per-worker trace shards merged in input order must serialise to
    exactly the serial trace — the schema-valid JSONL a report consumes."""

    def jsonl(workers: int) -> str:
        with trace.scoped(Tracer()) as tr:
            run_defence_matrix(
                defences=("median", "krum"),
                attacks=("sign_flip",),
                n_trials=1,
                workers=workers,
            )
        assert tr.events, "traced sweep recorded nothing"
        return tr.to_jsonl()

    assert jsonl(1) == jsonl(2)


@pytest.mark.slow
def test_table5_results_and_trace_worker_invariant():
    """The sweep surface end to end, driven purely by the environment:
    ``REPRO_WORKERS=4`` under ``REPRO_TRACE`` must reproduce the serial
    cells *and* the serial trace byte for byte."""
    serial = _run_child(TABLE5_CHILD + TRACE_HASH_SUFFIX, trace="1", workers=1)
    sharded = _run_child(TABLE5_CHILD + TRACE_HASH_SUFFIX, trace="1", workers=4)
    assert serial == sharded  # result digest AND trace hash
