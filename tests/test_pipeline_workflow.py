"""Tests for the closed-form pipeline timing model (Eq. 2 / Eq. 3)."""

import numpy as np
import pytest

from repro.pipeline.workflow import LevelTiming, PipelineModel, RoundTiming
from repro.sim.latency import FixedLatency, UniformLatency


def fixed_round(l_values, g=(2.0, 3.0)):
    """RoundTiming with levels {1: l_values[0], 2: l_values[1], ...}."""
    levels = {
        i + 1: LevelTiming(collect=c, aggregate=a)
        for i, (c, a) in enumerate(l_values)
    }
    return RoundTiming(levels=levels, global_timing=LevelTiming(*g))


class TestLevelTiming:
    def test_total(self):
        assert LevelTiming(1.0, 2.0).total == 3.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LevelTiming(-1.0, 2.0)


class TestRoundTiming:
    def test_contiguity_enforced(self):
        with pytest.raises(ValueError):
            RoundTiming(
                levels={2: LevelTiming(1, 1)}, global_timing=LevelTiming(1, 1)
            )
        with pytest.raises(ValueError):
            RoundTiming(levels={}, global_timing=LevelTiming(1, 1))

    def test_eq2_decomposition(self):
        # L=2 levels: level1 (1+2), level2 (3+4); global (2+3)
        rt = fixed_round([(1.0, 2.0), (3.0, 4.0)])
        for flag in (0, 1, 2):
            np.testing.assert_allclose(
                rt.sigma(flag),
                rt.sigma_w(flag) + rt.sigma_p(flag) + rt.sigma_g(flag),
            )

    def test_flag_at_bottom_neighbour(self):
        """Flag at l_F = L: only the bottom level is waited for."""
        rt = fixed_round([(1.0, 2.0), (3.0, 4.0)])
        assert rt.sigma_w(2) == 7.0          # tau_2 + tau'_2
        assert rt.sigma_p(2) == 3.0          # tau_1 + tau'_1
        assert rt.sigma_g(2) == 5.0
        np.testing.assert_allclose(rt.efficiency(2), 8.0 / 15.0)

    def test_flag_at_level1(self):
        rt = fixed_round([(1.0, 2.0), (3.0, 4.0)])
        assert rt.sigma_w(1) == 10.0         # both intermediate levels
        assert rt.sigma_p(1) == 0.0
        assert rt.sigma_g(1) == 5.0
        np.testing.assert_allclose(rt.efficiency(1), 5.0 / 15.0)

    def test_flag_at_top_zero_efficiency(self):
        """l_F = 0: everything is waited for, nothing is pipelined."""
        rt = fixed_round([(1.0, 2.0), (3.0, 4.0)])
        assert rt.sigma_w(0) == 15.0
        assert rt.sigma_p(0) == 0.0
        assert rt.sigma_g(0) == 0.0
        assert rt.efficiency(0) == 0.0

    def test_lower_flag_level_pipelines_more(self):
        """Monotonicity behind §III-D2: deeper flag level -> higher nu."""
        rt = fixed_round([(1.0, 1.0), (1.0, 1.0), (1.0, 1.0)], g=(1.0, 1.0))
        effs = [rt.efficiency(f) for f in range(0, 4)]
        assert all(a <= b for a, b in zip(effs, effs[1:]))

    def test_flag_validation(self):
        rt = fixed_round([(1.0, 2.0)])
        with pytest.raises(ValueError):
            rt.sigma_w(5)


class TestPipelineModel:
    def _model(self):
        return PipelineModel(
            collect_models={1: FixedLatency(1.0), 2: UniformLatency(1.0, 2.0)},
            aggregate_models={1: FixedLatency(0.5), 2: FixedLatency(0.5)},
            global_collect=FixedLatency(2.0),
            global_aggregate=FixedLatency(1.0),
        )

    def test_sample_round_structure(self, rng):
        rt = self._model().sample_round(rng)
        assert set(rt.levels) == {1, 2}
        assert rt.global_timing.total == 3.0

    def test_mean_efficiency_in_unit_interval(self, rng):
        nu = self._model().mean_efficiency(2, 50, rng)
        assert 0.0 < nu < 1.0

    def test_key_mismatch_rejected(self):
        with pytest.raises(ValueError):
            PipelineModel(
                collect_models={1: FixedLatency(1.0)},
                aggregate_models={2: FixedLatency(1.0)},
                global_collect=FixedLatency(1.0),
                global_aggregate=FixedLatency(1.0),
            )

    def test_non_contiguous_rejected(self):
        with pytest.raises(ValueError):
            PipelineModel(
                collect_models={2: FixedLatency(1.0)},
                aggregate_models={2: FixedLatency(1.0)},
                global_collect=FixedLatency(1.0),
                global_aggregate=FixedLatency(1.0),
            )

    def test_sample_rounds_count(self, rng):
        assert len(self._model().sample_rounds(7, rng)) == 7
        with pytest.raises(ValueError):
            self._model().sample_rounds(0, rng)
