"""Tests for result persistence and the CLI."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.core.trainer import RoundRecord
from repro.core.vanilla import VanillaRoundRecord
from repro.experiments.io import (
    load_cells_json,
    load_curves_npz,
    load_history_csv,
    save_cells_json,
    save_curves_npz,
    save_history_csv,
)
from repro.experiments.table5 import Table5Cell


class TestHistoryCSV:
    def test_round_trip(self, tmp_path):
        history = [
            RoundRecord(0, 0.5, 1.2, 0.9),
            RoundRecord(1, 0.6, 1.0, 0.8),
        ]
        path = save_history_csv(tmp_path / "h.csv", history)
        rows = load_history_csv(path)
        assert rows[0]["round_index"] == 0
        assert rows[1]["test_accuracy"] == pytest.approx(0.6)
        assert len(rows) == 2

    def test_vanilla_records_share_schema(self, tmp_path):
        history = [VanillaRoundRecord(0, 0.4, 2.0, 1.5)]
        path = save_history_csv(tmp_path / "v.csv", history)
        rows = load_history_csv(path)
        assert rows[0]["test_loss"] == pytest.approx(2.0)

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ValueError):
            load_history_csv(path)

    def test_creates_parent_dirs(self, tmp_path):
        path = save_history_csv(tmp_path / "deep" / "dir" / "h.csv", [])
        assert path.exists()


class TestCellsJSON:
    def test_round_trip(self, tmp_path):
        cells = [
            Table5Cell(True, "type1", 0.5, 0.88, 0.10, 0.01, 0.0, 2),
            Table5Cell(False, "type2", 0.0, 0.55, 0.50),
        ]
        path = save_cells_json(tmp_path / "cells.json", cells)
        back = load_cells_json(path)
        assert back == cells

    def test_non_list_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"not": "a list"}')
        with pytest.raises(ValueError):
            load_cells_json(path)


class TestCurvesNPZ:
    def test_round_trip(self, tmp_path):
        path = save_curves_npz(
            tmp_path / "c.npz",
            rounds=np.arange(5),
            mean=np.linspace(0, 1, 5),
        )
        back = load_curves_npz(path)
        np.testing.assert_array_equal(back["rounds"], np.arange(5))
        assert set(back) == {"rounds", "mean"}

    def test_dataclass_rejected(self, tmp_path):
        cell = Table5Cell(True, "type1", 0.0, 0.9, 0.9)
        with pytest.raises(TypeError):
            save_curves_npz(tmp_path / "c.npz", cell=cell)


class TestCLI:
    def test_parser_commands(self):
        parser = build_parser()
        for command in ("table5", "figure3", "schemes", "pipeline", "tolerance", "matrix"):
            args = parser.parse_args([command])
            assert args.command == command

    def test_tolerance_closed_form(self, capsys):
        assert main(["tolerance", "--levels", "3"]) == 0
        out = capsys.readouterr().out
        assert "57.8125%" in out

    def test_pipeline_command(self, capsys):
        assert main(["--rounds", "5", "pipeline"]) == 0
        out = capsys.readouterr().out
        assert "overall efficiency" in out

    def test_matrix_command(self, capsys):
        assert main(["matrix"]) == 0
        out = capsys.readouterr().out
        assert "fedavg" in out

    def test_table5_tiny_with_out(self, tmp_path, capsys):
        code = main(
            [
                "--rounds",
                "2",
                "--seed",
                "7",
                "--out",
                str(tmp_path),
                "table5",
                "--fractions",
                "0.0",
                "--attack",
                "type1",
            ]
        )
        assert code == 0
        assert (tmp_path / "table5.json").exists()
        cells = load_cells_json(tmp_path / "table5.json")
        assert len(cells) == 1

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
