"""Tests for the decentralized gossip baseline."""

import networkx as nx
import numpy as np
import pytest

from repro.attacks import SignFlip
from repro.core.config import TrainingConfig
from repro.core.gossip import GossipTrainer, build_topology
from repro.data.partition import iid_partition
from repro.data.synthetic_mnist import SyntheticMNIST, make_synthetic_mnist
from repro.nn.model import MLP
from repro.utils.seeding import SeedSequenceFactory


def gossip_setup(n_nodes=8, seed=0):
    seeds = SeedSequenceFactory(seed)
    cfg = SyntheticMNIST(side=8, noise_sigma=0.15)
    train, test = make_synthetic_mnist(n_nodes * 80, 300, seeds.generator("d"), cfg)
    part = iid_partition(train, n_nodes, seeds.generator("p"))
    datasets = dict(enumerate(part.shards))
    model = MLP(64, (16,), 10, seeds.generator("i"))
    return datasets, model, test


TRAIN_CFG = TrainingConfig(local_iterations=6, batch_size=32, learning_rate=0.5)


class TestBuildTopology:
    def test_ring(self, rng):
        g = build_topology("ring", 8, rng)
        assert all(d == 2 for _, d in g.degree)

    def test_regular(self, rng):
        g = build_topology("regular", 8, rng, degree=4)
        assert all(d == 4 for _, d in g.degree)

    def test_complete(self, rng):
        g = build_topology("complete", 5, rng)
        assert g.number_of_edges() == 10

    def test_erdos_connected(self, rng):
        g = build_topology("erdos_renyi", 12, rng, p=0.3)
        assert nx.is_connected(g)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            build_topology("ring", 1, rng)
        with pytest.raises(ValueError):
            build_topology("regular", 8, rng, degree=9)
        with pytest.raises(ValueError):
            build_topology("hexagon", 8, rng)


class TestGossipTrainer:
    def test_learns_on_ring(self, rng):
        datasets, model, test = gossip_setup()
        trainer = GossipTrainer(
            build_topology("ring", 8, rng), datasets, model, TRAIN_CFG, test, seed=1
        )
        history = trainer.run(25)
        assert history[-1].mean_honest_accuracy > 0.5

    def test_consensus_emerges(self, rng):
        """Honest disagreement shrinks as gossip mixes the models."""
        datasets, model, test = gossip_setup()
        trainer = GossipTrainer(
            build_topology("complete", 8, rng), datasets, model, TRAIN_CFG, test, seed=2
        )
        history = trainer.run(10)
        # complete-graph averaging: disagreement collapses immediately and
        # stays small relative to an unmixed system
        assert history[-1].honest_disagreement < 1.0

    def test_robust_mix_beats_average_under_attack(self, rng):
        results = {}
        for rule in ("average", "trimmed"):
            datasets, model, test = gossip_setup(seed=3)
            trainer = GossipTrainer(
                build_topology("complete", 8, np.random.default_rng(3)),
                datasets,
                model,
                TRAIN_CFG,
                test,
                mix_rule=rule,
                byzantine=[0, 1],
                model_attack=SignFlip(scale=5.0),
                seed=3,
            )
            trainer.run(12)
            results[rule] = trainer.history[-1].mean_honest_accuracy
        assert results["trimmed"] > results["average"]

    def test_median_rule_runs(self, rng):
        datasets, model, test = gossip_setup()
        trainer = GossipTrainer(
            build_topology("regular", 8, rng, degree=4),
            datasets,
            model,
            TRAIN_CFG,
            test,
            mix_rule="median",
            seed=4,
        )
        trainer.run(5)
        assert len(trainer.history) == 5

    def test_validation(self, rng):
        datasets, model, test = gossip_setup()
        graph = build_topology("ring", 8, rng)
        with pytest.raises(ValueError):
            GossipTrainer(graph, {0: datasets[0]}, model, TRAIN_CFG, test)
        with pytest.raises(ValueError):
            GossipTrainer(graph, datasets, model, TRAIN_CFG, test, mix_rule="magic")
        with pytest.raises(ValueError):
            GossipTrainer(graph, datasets, model, TRAIN_CFG, test, byzantine=[99],
                          model_attack=SignFlip())
        with pytest.raises(ValueError):
            GossipTrainer(graph, datasets, model, TRAIN_CFG, test, byzantine=[0])
        trainer = GossipTrainer(graph, datasets, model, TRAIN_CFG, test)
        with pytest.raises(ValueError):
            trainer.run(0)

    def test_deterministic(self):
        finals = []
        for _ in range(2):
            datasets, model, test = gossip_setup(seed=5)
            trainer = GossipTrainer(
                build_topology("ring", 8, np.random.default_rng(5)),
                datasets, model, TRAIN_CFG, test, seed=5,
            )
            trainer.run(3)
            finals.append(trainer.models[0].copy())
        np.testing.assert_array_equal(finals[0], finals[1])
