"""Tests for data-poisoning attacks."""

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.poisoning import (
    apply_poisoning,
    backdoor_trigger,
    label_flip,
    poison_type1,
    poison_type2,
)


def small_dataset(seed=0):
    rng = np.random.default_rng(seed)
    return Dataset(rng.random((50, 16)), rng.integers(0, 10, 50), 10)


class TestType1:
    def test_all_labels_become_target(self):
        poisoned = poison_type1(small_dataset(), target_label=9)
        assert np.all(poisoned.y == 9)

    def test_features_unchanged(self):
        ds = small_dataset()
        poisoned = poison_type1(ds)
        np.testing.assert_array_equal(poisoned.X, ds.X)

    def test_original_not_mutated(self):
        ds = small_dataset()
        before = ds.y.copy()
        poison_type1(ds)
        np.testing.assert_array_equal(ds.y, before)

    def test_target_validation(self):
        with pytest.raises(ValueError):
            poison_type1(small_dataset(), target_label=10)


class TestType2:
    def test_labels_randomised(self, rng):
        ds = small_dataset()
        poisoned = poison_type2(ds, rng)
        assert not np.array_equal(poisoned.y, ds.y)
        assert poisoned.y.min() >= 0 and poisoned.y.max() < 10

    def test_covers_many_labels(self, rng):
        poisoned = poison_type2(small_dataset(), rng)
        assert len(np.unique(poisoned.y)) >= 5


class TestLabelFlip:
    def test_flips_only_source(self):
        ds = Dataset(np.zeros((4, 2)), np.array([0, 1, 0, 2]), 3)
        flipped = label_flip(ds, source=0, target=2)
        np.testing.assert_array_equal(flipped.y, [2, 1, 2, 2])

    def test_same_label_rejected(self):
        with pytest.raises(ValueError):
            label_flip(small_dataset(), 1, 1)


class TestBackdoor:
    def test_trigger_stamped_and_relabelled(self):
        ds = small_dataset()
        poisoned = backdoor_trigger(ds, target_label=7, trigger_value=1.5)
        assert np.all(poisoned.y == 7)
        assert np.all(poisoned.X[:, :4] == 1.5)
        # rest of the image untouched
        np.testing.assert_array_equal(poisoned.X[:, 4:], ds.X[:, 4:])

    def test_partial_fraction(self, rng):
        ds = small_dataset()
        poisoned = backdoor_trigger(
            ds, target_label=7, poison_fraction=0.5, rng=rng
        )
        stamped = np.isclose(poisoned.X[:, 0], 1.5)
        assert stamped.sum() == 25
        np.testing.assert_array_equal(poisoned.y[stamped], 7)

    def test_fraction_needs_rng(self):
        with pytest.raises(ValueError):
            backdoor_trigger(small_dataset(), 7, poison_fraction=0.5)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            backdoor_trigger(small_dataset(), 99)
        with pytest.raises(ValueError):
            backdoor_trigger(small_dataset(), 7, poison_fraction=0.0, rng=rng)
        with pytest.raises(ValueError):
            backdoor_trigger(small_dataset(), 7, n_trigger_features=0)


class TestDispatch:
    def test_none_returns_same(self, rng):
        ds = small_dataset()
        assert apply_poisoning(ds, "none", rng) is ds

    def test_type1_dispatch(self, rng):
        poisoned = apply_poisoning(small_dataset(), "type1", rng)
        assert np.all(poisoned.y == 9)

    def test_type2_dispatch(self, rng):
        poisoned = apply_poisoning(small_dataset(), "type2", rng)
        assert len(np.unique(poisoned.y)) > 1

    def test_unknown_attack(self, rng):
        with pytest.raises(ValueError):
            apply_poisoning(small_dataset(), "bogus", rng)
