"""Tests for table rendering."""

import pytest

from repro.utils.tables import format_percent, format_table


class TestFormatPercent:
    def test_basic(self):
        assert format_percent(0.578125) == "57.8%"

    def test_digits(self):
        assert format_percent(0.578125, digits=4) == "57.8125%"

    def test_zero_and_one(self):
        assert format_percent(0.0) == "0.0%"
        assert format_percent(1.0) == "100.0%"


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bbbb"], [["xx", "y"], ["z", "wwwww"]])
        lines = out.splitlines()
        assert len(lines) == 4
        # all rows equal width
        assert len(set(len(line) for line in lines)) == 1

    def test_title(self):
        out = format_table(["h"], [["v"]], title="T")
        assert out.splitlines()[0] == "T"

    def test_cell_count_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_non_string_cells(self):
        out = format_table(["n"], [[1.5], [2]])
        assert "1.5" in out and "2" in out
