"""Asynchronous BFT consensus: Bracha RBC, Mo14 ABA, ACS, adversaries.

Property-style seeded sweeps: every protocol guarantee (validity,
agreement, totality, subset size) is checked across seeds and adversary
types at ``f < n/3``, always through the real simulator-driven message
fabric — no shortcut evaluation.
"""

import numpy as np
import pytest

from repro.check.invariants import (
    InvariantViolation,
    acs_subset_size,
    echo_quorum,
    max_faulty,
    quorum_size,
    ready_support,
)
from repro.consensus import ACSConsensus, PBFTConsensus, get_consensus
from repro.consensus.async_bft import (
    ACSNode,
    BrachaRBC,
    CrashMidBroadcast,
    Equivocator,
    Mo14ABA,
    Packet,
    Router,
    SelectiveSender,
    make_adversary,
    make_common_coin,
)
from repro.faults.plan import FaultPlan
from repro.sim.engine import Simulator
from repro.sim.latency import UniformLatency
from repro.sim.network import Channel
from repro.utils.seeding import seeded_generator


# ---------------------------------------------------------------------------
# harness


def make_fabric(n, seed=0, adversaries=None, plan=None, retries=None):
    """Simulator + channel + router over ``n`` members."""
    sim = Simulator()
    rng = seeded_generator(seed)
    latency = UniformLatency(0.05, 0.15)
    if plan is not None:
        from repro.faults.transport import FaultyChannel

        channel = FaultyChannel(sim, latency, rng, plan)
    else:
        channel = Channel(sim, latency, rng)
    router = Router(
        sim,
        channel,
        members=list(range(n)),
        value_bytes=256,
        adversaries=adversaries or {},
        retries=retries,
    )
    return sim, channel, router


class RBCHarness:
    """One BrachaRBC instance per live member, single sender slot."""

    def __init__(self, n, f, router, sender=0, live=None):
        self.delivered = {}
        self.nodes = {}
        for i in live if live is not None else range(n):
            node = BrachaRBC(
                owner=i,
                sender=sender,
                n=n,
                f=f,
                router=router,
                instance=sender,
                on_deliver=self._make_cb(i),
            )
            router.register(i, node.receive)
            self.nodes[i] = node

    def _make_cb(self, i):
        def cb(instance, value):
            self.delivered[i] = value

        return cb


class ABAHarness:
    """One Mo14ABA instance per member, one shared coin."""

    def __init__(self, n, f, router, coin):
        self.decided = {}
        self.nodes = {}
        for i in range(n):
            node = Mo14ABA(
                owner=i,
                n=n,
                f=f,
                router=router,
                instance=0,
                coin=coin,
                on_decide=self._make_cb(i),
            )
            router.register(i, node.receive)
            self.nodes[i] = node

    def _make_cb(self, i):
        def cb(instance, bit):
            self.decided[i] = bit

        return cb


# ---------------------------------------------------------------------------
# invariants helpers


class TestThresholds:
    def test_echo_quorum_majority_intersection(self):
        # any two echo quorums intersect in > f members
        for n in range(1, 30):
            f = max_faulty(n)
            q = echo_quorum(n, f)
            assert 2 * q - n > f

    def test_ready_support_exceeds_faulty(self):
        assert ready_support(2) == 3

    def test_acs_subset_size_bounds(self):
        assert acs_subset_size(7, 2) == 5
        with pytest.raises(InvariantViolation):
            acs_subset_size(3, 3)

    def test_echo_quorum_rejects_bad_bound(self):
        with pytest.raises(InvariantViolation):
            echo_quorum(3, 1)


# ---------------------------------------------------------------------------
# Bracha RBC


class TestBrachaRBC:
    @pytest.mark.parametrize("n", [4, 7, 10])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_validity_honest_sender(self, n, seed):
        """Every honest node delivers an honest sender's value."""
        f = max_faulty(n)
        sim, _, router = make_fabric(n, seed=seed)
        h = RBCHarness(n, f, router)
        h.nodes[0].start(("payload", seed))
        sim.run()
        assert h.delivered == {i: ("payload", seed) for i in range(n)}

    @pytest.mark.parametrize("seed", range(6))
    def test_agreement_under_equivocation(self, seed):
        """An equivocating sender never splits honest deliveries."""
        n, f = 7, 2
        adv = {0: Equivocator()}
        sim, _, router = make_fabric(n, seed=seed, adversaries=adv)
        h = RBCHarness(n, f, router)
        h.nodes[0].start("real")
        sim.run()
        values = {v for i, v in h.delivered.items() if i != 0}
        assert len(values) <= 1  # agreement: all-or-nothing on one variant

    @pytest.mark.parametrize("seed", range(6))
    def test_totality_under_selective_delivery(self, seed):
        """If any honest node delivers, every honest node delivers."""
        n, f = 7, 2
        adv = {0: SelectiveSender(victims=range(0, n, 2))}
        sim, _, router = make_fabric(n, seed=seed, adversaries=adv)
        h = RBCHarness(n, f, router)
        h.nodes[0].start("v")
        sim.run()
        honest = [i for i in range(n) if i != 0]
        delivered = [i for i in honest if i in h.delivered]
        assert delivered == honest or delivered == []

    @pytest.mark.parametrize("seed", range(4))
    def test_crash_mid_broadcast_all_or_nothing(self, seed):
        n, f = 7, 2
        adv = {0: CrashMidBroadcast(after_sends=3)}
        sim, _, router = make_fabric(n, seed=seed, adversaries=adv)
        h = RBCHarness(n, f, router)
        h.nodes[0].start("v")
        sim.run()
        honest = [i for i in range(n) if i != 0]
        delivered = [i for i in honest if i in h.delivered]
        assert delivered == honest or delivered == []

    def test_non_sender_cannot_start(self):
        n, f = 4, 1
        _, _, router = make_fabric(n)
        h = RBCHarness(n, f, router)
        with pytest.raises(ValueError):
            h.nodes[1].start("hijack")

    def test_duplicates_are_idempotent(self):
        """Fault-layer duplication cannot double-count a sender."""
        n, f = 4, 1
        plan = FaultPlan.uniform(duplicate_probability=0.5, seed=9)
        sim, _, router = make_fabric(n, seed=3, plan=plan)
        h = RBCHarness(n, f, router)
        h.nodes[0].start("v")
        sim.run()
        assert all(h.delivered[i] == "v" for i in range(n))


# ---------------------------------------------------------------------------
# Mo14 ABA


class TestMo14ABA:
    @pytest.mark.parametrize("n", [4, 7])
    @pytest.mark.parametrize("bit", [0, 1])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_validity_unanimous_input(self, n, bit, seed):
        """All-honest unanimous input decides that input."""
        f = max_faulty(n)
        sim, _, router = make_fabric(n, seed=seed)
        h = ABAHarness(n, f, router, make_common_coin(seed))
        for node in h.nodes.values():
            node.propose(bit)
        sim.run()
        assert h.decided == {i: bit for i in range(n)}

    @pytest.mark.parametrize("seed", range(8))
    def test_agreement_mixed_input(self, seed):
        """Mixed inputs decide a single common bit, an actual input."""
        n, f = 7, 2
        sim, _, router = make_fabric(n, seed=seed)
        h = ABAHarness(n, f, router, make_common_coin(seed))
        for i, node in h.nodes.items():
            node.propose(i % 2)
        sim.run()
        assert set(h.decided) == set(range(n))
        assert len(set(h.decided.values())) == 1
        assert next(iter(h.decided.values())) in (0, 1)

    @pytest.mark.parametrize("seed", range(5))
    def test_agreement_under_equivocation(self, seed):
        """A bit-flipping Byzantine member cannot split decisions."""
        n, f = 7, 2
        adv = {6: Equivocator()}
        sim, _, router = make_fabric(n, seed=seed, adversaries=adv)
        h = ABAHarness(n, f, router, make_common_coin(seed))
        for i, node in h.nodes.items():
            node.propose(i % 2)
        sim.run()
        honest_bits = {h.decided[i] for i in range(n - 1)}
        assert len(honest_bits) == 1

    def test_event_queue_drains(self):
        """The DONE gadget halts every node: no events left behind."""
        n, f = 7, 2
        sim, _, router = make_fabric(n, seed=4)
        h = ABAHarness(n, f, router, make_common_coin(4))
        for i, node in h.nodes.items():
            node.propose(i % 2)
        sim.run()
        assert len(sim.queue) == 0
        assert all(node.halted for node in h.nodes.values())

    def test_rejects_non_bit_input(self):
        n, f = 4, 1
        _, _, router = make_fabric(n)
        h = ABAHarness(n, f, router, make_common_coin(0))
        with pytest.raises(ValueError):
            h.nodes[0].propose(2)

    def test_ignores_non_bit_messages(self):
        """Byzantine junk values can never reach any threshold."""
        n, f = 4, 1
        sim, _, router = make_fabric(n)
        h = ABAHarness(n, f, router, make_common_coin(0))
        h.nodes[0].receive(3, Packet(instance=0, mtype="bval", value="junk", round=1))
        h.nodes[0].receive(3, Packet(instance=0, mtype="bval", value=True, round=1))
        assert h.nodes[0]._bval_recv == {}


# ---------------------------------------------------------------------------
# ACS composition


def run_acs(n, seed=0, adversaries=None, byzantine=(), live=None):
    f = max_faulty(n)
    sim, _, router = make_fabric(n, seed=seed, adversaries=adversaries)
    coin = make_common_coin(seed)
    outputs = []
    nodes = {}
    for i in live if live is not None else range(n):
        nodes[i] = ACSNode(
            node_id=i, n=n, f=f, router=router, coin=coin,
            on_output=outputs.append,
        )
    for i, node in nodes.items():
        node.propose(("val", i))
    sim.run()
    return nodes, outputs


class TestACS:
    @pytest.mark.parametrize("n", [4, 7])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_no_fault_full_subset(self, n, seed):
        nodes, outputs = run_acs(n, seed=seed)
        reference = nodes[0].output
        assert reference is not None
        assert sorted(reference) == list(range(n))
        for node in nodes.values():
            assert node.output == reference

    @pytest.mark.parametrize("adversary", ["equivocate", "withhold", "crash_midway"])
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_agreement_and_size_under_adversary(self, adversary, seed):
        n = 7
        f = max_faulty(n)
        byz = (1, 4)  # |byz| = 2 = f
        adversaries = {b: make_adversary(adversary, n) for b in byz}
        nodes, _ = run_acs(n, seed=seed, adversaries=adversaries, byzantine=byz)
        honest = [i for i in range(n) if i not in byz]
        reference = nodes[honest[0]].output
        assert reference is not None
        for i in honest:
            assert nodes[i].output == reference  # agreement
        assert len(reference) >= acs_subset_size(n, len(byz))  # |S| >= n - f
        # every honest slot in S carries the honest proposal
        for j, value in reference.items():
            if j in honest:
                assert value == ("val", j)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_crashed_members_excluded(self, seed):
        """Crash-silent members never make the subset; the rest agree."""
        n = 7
        live = [0, 2, 3, 4, 6]  # 1 and 5 silent from the start
        nodes, _ = run_acs(n, seed=seed, live=live)
        reference = nodes[0].output
        assert reference is not None
        assert 1 not in reference and 5 not in reference
        assert len(reference) >= acs_subset_size(n, 2)
        for i in live:
            assert nodes[i].output == reference


# ---------------------------------------------------------------------------
# the "acs" ConsensusProtocol adapter


def proposal_stack(rng, n=7, d=6):
    center = rng.standard_normal(d)
    return center + 0.1 * rng.standard_normal((n, d)), center


class TestACSConsensus:
    def test_registered(self):
        protocol = get_consensus("acs")
        assert isinstance(protocol, ACSConsensus)
        assert protocol.handles_silent

    def test_registry_does_not_inject_validator(self):
        protocol = get_consensus("acs", validator=object())
        assert isinstance(protocol, ACSConsensus)

    def test_clean_run_accepts_all(self):
        rng = seeded_generator(0)
        proposals, center = proposal_stack(rng)
        result = ACSConsensus().agree(proposals, rng=rng)
        assert result.accepted.all()
        assert np.linalg.norm(result.value - center) < 1.0
        assert result.cost.model_messages > 0
        assert result.cost.scalar_messages > 0
        assert result.cost.rounds >= 2  # RBC stage + at least one ABA round

    @pytest.mark.parametrize("adversary", ["equivocate", "withhold", "crash_midway"])
    def test_byzantine_protocol_behaviour(self, adversary):
        rng = seeded_generator(1)
        proposals, center = proposal_stack(rng)
        byz = np.zeros(7, dtype=bool)
        byz[[1, 4]] = True
        result = ACSConsensus(adversary=adversary).agree(
            proposals, byzantine_mask=byz, rng=rng
        )
        # honest majority survives; the aggregate stays near the center
        assert result.accepted[~byz].sum() >= acs_subset_size(7, 2) - 2
        assert np.linalg.norm(result.value - center) < 1.0
        assert result.info["subset"] == sorted(result.info["subset"])

    def test_silent_members_not_accepted(self):
        rng = seeded_generator(2)
        proposals, _ = proposal_stack(rng)
        silent = np.zeros(7, dtype=bool)
        silent[[2, 5]] = True
        result = ACSConsensus().agree(proposals, silent_mask=silent, rng=rng)
        assert not result.accepted[silent].any()
        assert result.accepted.sum() >= acs_subset_size(7, 2)
        assert result.info["silent"] == 2

    def test_fault_bound_enforced(self):
        rng = seeded_generator(3)
        proposals, _ = proposal_stack(rng, n=6)
        byz = np.zeros(6, dtype=bool)
        byz[0] = True
        silent = np.zeros(6, dtype=bool)
        silent[1] = True
        with pytest.raises(ValueError):
            ACSConsensus().agree(
                proposals, byzantine_mask=byz, silent_mask=silent, rng=rng
            )

    def test_fault_plan_applies_to_consensus_traffic(self):
        rng = seeded_generator(4)
        proposals, center = proposal_stack(rng)
        plan = FaultPlan.uniform(drop_probability=0.1, seed=11)
        result = ACSConsensus(fault_plan=plan).agree(proposals, rng=rng)
        assert result.accepted.all()
        assert result.info["fault_stats"]["dropped"] > 0
        assert np.linalg.norm(result.value - center) < 1.0

    def test_bit_identical_replay(self):
        proposals, _ = proposal_stack(seeded_generator(5))
        byz = np.zeros(7, dtype=bool)
        byz[1] = True

        def run():
            return ACSConsensus(adversary="equivocate").agree(
                proposals, byzantine_mask=byz, rng=seeded_generator(42)
            )

        a, b = run(), run()
        np.testing.assert_array_equal(a.value, b.value)
        np.testing.assert_array_equal(a.accepted, b.accepted)
        assert a.info["events"] == b.info["events"]
        assert a.info["sim_time"] == b.info["sim_time"]
        assert a.cost == b.cost

    def test_cost_billed_from_messages_actually_sent(self):
        rng = seeded_generator(6)
        proposals, _ = proposal_stack(rng)
        result = ACSConsensus().agree(proposals, rng=rng)
        by_kind = result.info["messages_by_kind"]
        assert result.cost.model_messages == (
            by_kind.get("acs.init", 0) + by_kind.get("acs.echo", 0)
        )
        assert result.cost.scalar_messages == sum(
            by_kind.get(k, 0)
            for k in ("acs.ready", "acs.bval", "acs.aux", "acs.done")
        )
        # self-deliveries ride the event queue, not the bill
        assert result.info["self_deliveries"] > 0

    def test_unknown_adversary_rejected(self):
        with pytest.raises(ValueError):
            ACSConsensus(adversary="rumour")

    def test_stall_reported_as_invariant_violation(self):
        rng = seeded_generator(7)
        proposals, _ = proposal_stack(rng)
        with pytest.raises(InvariantViolation, match="stalled"):
            ACSConsensus(max_events=50).agree(proposals, rng=rng)


# ---------------------------------------------------------------------------
# satellite 1: the PBFT live-member bill


class TestPBFTBill:
    def _bill(self, n, silent_count, seed=0):
        rng = seeded_generator(seed)
        proposals = rng.standard_normal((n, 4))
        protocol = PBFTConsensus()
        silent = np.zeros(n, dtype=bool)
        silent[:silent_count] = True
        result = protocol.agree(
            proposals,
            silent_mask=silent if silent_count else None,
            rng=seeded_generator(seed + 1),
        )
        return result

    def test_silent_members_not_billed_as_senders(self):
        """The bill must shrink when members are crash-silent."""
        n = 7
        live = self._bill(n, 0)
        with_silent = self._bill(n, 2)
        assert with_silent.cost.scalar_messages < live.cost.scalar_messages
        assert with_silent.cost.model_messages <= live.cost.model_messages

    def test_exact_live_member_formula(self):
        n = 7
        result = self._bill(n, 2)
        n_live = 5
        views = result.info["view_changes"] + 1
        timeouts = result.info["view_timeouts"]
        assert result.cost.model_messages == (n_live - 1) + (
            (views - timeouts) * (n_live - 1)
        )
        assert result.cost.scalar_messages == (
            views * 2 * n_live * (n_live - 1)
            + result.info["view_changes"] * n_live * (n_live - 1)
        )

    def test_no_silent_matches_original_bill(self):
        """Without silent members the bill equals the historical formula."""
        n = 6
        result = self._bill(n, 0)
        views = result.info["view_changes"] + 1
        assert result.cost.model_messages == (n - 1) + views * (n - 1)
        assert result.cost.scalar_messages == (
            views * 2 * n * (n - 1)
            + result.info["view_changes"] * n * (n - 1)
        )


# ---------------------------------------------------------------------------
# satellite 2: silent_mask on every protocol via the base class


@pytest.mark.parametrize(
    "name", ["voting", "committee", "pos", "approx_agreement", "pbft"]
)
class TestSilentMaskBase:
    def test_silent_excluded_and_info_counted(self, name):
        rng = seeded_generator(0)
        n = 8
        proposals = rng.standard_normal((n, 4)) * 0.1
        protocol = get_consensus(name)
        silent = np.zeros(n, dtype=bool)
        silent[3] = True
        result = protocol.agree(
            proposals, silent_mask=silent, rng=seeded_generator(1)
        )
        assert result.accepted.shape == (n,)
        assert not result.accepted[3]
        assert result.accepted.any()
        assert result.info["silent"] == 1

    def test_keyword_and_attribute_channel_agree(self, name):
        """The legacy one-shot attribute behaves like the keyword."""
        rng = seeded_generator(2)
        n = 8
        proposals = rng.standard_normal((n, 4)) * 0.1
        silent = np.zeros(n, dtype=bool)
        silent[5] = True
        a = get_consensus(name)
        a.silent_mask = silent.copy()
        ra = a.agree(proposals, rng=seeded_generator(3))
        assert a.silent_mask is None  # one-shot
        b = get_consensus(name)
        rb = b.agree(proposals, silent_mask=silent, rng=seeded_generator(3))
        np.testing.assert_array_equal(ra.accepted, rb.accepted)
        np.testing.assert_allclose(ra.value, rb.value)


class TestCommitteeRemap:
    def test_committee_indices_remapped_to_full_membership(self):
        """The reported committee must index the original stack."""
        rng = seeded_generator(4)
        n = 9
        proposals = rng.standard_normal((n, 4)) * 0.1
        silent = np.zeros(n, dtype=bool)
        silent[[0, 1]] = True
        protocol = get_consensus("committee", {"committee_size": 4})
        result = protocol.agree(proposals, silent_mask=silent, rng=seeded_generator(5))
        committee = np.asarray(result.info["committee"])
        assert committee.size == 4
        assert not np.isin(committee, [0, 1]).any()
        assert ((committee >= 0) & (committee < n)).all()

    def test_all_silent_rejected(self):
        rng = seeded_generator(6)
        proposals = rng.standard_normal((4, 3))
        protocol = get_consensus("voting")
        with pytest.raises(ValueError, match="silent"):
            protocol.agree(proposals, silent_mask=np.ones(4, dtype=bool), rng=rng)


# ---------------------------------------------------------------------------
# trainer integration


class TestTrainerWithACS:
    def test_round_runs_with_acs_top(self):
        from tests.test_core_trainer import default_config, small_setup

        from repro.core.config import LevelAggregation
        from repro.core.trainer import ABDHFLTrainer

        hierarchy, datasets, model, test = small_setup(n_top=4, seed=1)
        cfg = default_config(
            default_top=LevelAggregation("cba", "acs"),
        )
        trainer = ABDHFLTrainer(hierarchy, datasets, model, cfg, test)
        record = trainer.run_round()
        assert np.isfinite(record.test_loss)
        assert record.consensus_cost.model_messages > 0
        assert record.consensus_cost.scalar_messages > 0

    def test_make_consensus_backcompat(self):
        from repro.core.trainer import make_consensus

        assert isinstance(make_consensus("acs"), ACSConsensus)
        with pytest.raises(KeyError):
            make_consensus("raft")


# ---------------------------------------------------------------------------
# defence matrix with the consensus axis


class TestMatrixConsensusAxis:
    KW = dict(
        defences=("median",),
        attacks=("sign_flip",),
        byzantine_fraction=0.2,
        n_total=7,
        dim=8,
        n_trials=2,
        seed=3,
        consensus="acs",
        consensus_adversary="equivocate",
        drop_fraction=0.15,
    )

    def test_cells_carry_consensus_labels(self):
        from repro.experiments.matrix import run_defence_matrix

        cells = run_defence_matrix(workers=1, **self.KW)
        assert all(c.consensus == "acs" for c in cells)
        assert all(c.consensus_adversary == "equivocate" for c in cells)
        assert all(np.isfinite(c.gap) for c in cells)

    def test_adversary_requires_acs(self):
        from repro.experiments.matrix import gradient_gap

        with pytest.raises(ValueError, match="acs"):
            gradient_gap(
                "median", "sign_flip",
                consensus="voting", consensus_adversary="withhold",
            )
        with pytest.raises(ValueError, match="consensus backend"):
            gradient_gap(
                "median", "sign_flip",
                fault_plan=FaultPlan.uniform(drop_probability=0.1),
            )

    @pytest.mark.slow
    def test_bit_identical_across_worker_counts(self):
        """The acs matrix under an active fault plan shards cleanly:
        REPRO_WORKERS is a pure wall-clock knob, never a results knob."""
        from repro.experiments.matrix import run_defence_matrix

        kw = dict(
            self.KW,
            fault_plan=FaultPlan.uniform(drop_probability=0.05, seed=11),
        )
        serial = run_defence_matrix(workers=1, **kw)
        sharded = run_defence_matrix(workers=2, **kw)
        assert serial == sharded
