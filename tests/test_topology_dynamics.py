"""Tests for membership dynamics (Assumption 3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.dynamics import ChurnProcess, join_cluster, leave_cluster
from repro.topology.tree import build_ecsm


class TestJoin:
    def test_join_adds_member(self, paper_hierarchy):
        h = paper_hierarchy
        before = len(h.bottom_clients())
        device = join_cluster(h, 0)
        assert len(h.bottom_clients()) == before + 1
        assert device in h.clusters_at(2)[0].members
        assert not h.is_byzantine(device)

    def test_join_byzantine(self, paper_hierarchy):
        device = join_cluster(paper_hierarchy, 3, byzantine=True)
        assert paper_hierarchy.is_byzantine(device)

    def test_join_does_not_displace_leader(self, paper_hierarchy):
        cluster = paper_hierarchy.clusters_at(2)[5]
        leader_before = cluster.leader
        join_cluster(paper_hierarchy, 5)
        assert cluster.leader == leader_before

    def test_join_duplicate_id_rejected(self, paper_hierarchy):
        with pytest.raises(ValueError):
            join_cluster(paper_hierarchy, 0, device_id=0)

    def test_join_bad_cluster_rejected(self, paper_hierarchy):
        with pytest.raises(IndexError):
            join_cluster(paper_hierarchy, 99)

    def test_ids_stay_unique(self, paper_hierarchy):
        ids = {join_cluster(paper_hierarchy, i % 16) for i in range(10)}
        assert len(ids) == 10
        assert ids.isdisjoint(set(range(64)))


class TestLeave:
    def test_leave_plain_member(self, paper_hierarchy):
        h = paper_hierarchy
        # device 1 is a plain member of bottom cluster 0 (leader is 0)
        repaired = leave_cluster(h, 1)
        assert repaired == []
        assert 1 not in h.clusters_at(2)[0].members
        assert 1 not in h.nodes

    def test_leave_bottom_leader_re_elects(self, paper_hierarchy):
        h = paper_hierarchy
        # device 4 leads bottom cluster 1 but is a plain member at level 1
        cluster = h.cluster_of(4, 2)
        assert cluster.leader == 4
        repaired = leave_cluster(h, 4)
        assert (2, cluster.index) in repaired
        assert cluster.leader == 5  # lowest remaining id
        # new leader took the seat at level 1
        assert 5 in h.cluster_of(5, 1).members
        assert 4 not in h.nodes

    def test_leave_full_leader_chain(self, paper_hierarchy):
        h = paper_hierarchy
        # device 0 leads its bottom cluster, leads its level-1 cluster,
        # and sits in the top cluster
        assert 0 in h.top_cluster.members
        repaired = leave_cluster(h, 0)
        levels_repaired = {lvl for lvl, _ in repaired}
        assert 2 in levels_repaired and 1 in levels_repaired
        assert 0 not in h.top_cluster.members
        # the structure remains valid after the chain repair
        h.validate()

    def test_leave_last_member_rejected(self):
        h = build_ecsm(n_levels=2, cluster_size=1, n_top=2)
        with pytest.raises(ValueError):
            leave_cluster(h, h.bottom_clients()[0])

    def test_leave_unknown_device(self, paper_hierarchy):
        with pytest.raises(KeyError):
            leave_cluster(paper_hierarchy, 999)

    def test_descendant_queries_still_work(self, paper_hierarchy):
        h = paper_hierarchy
        leave_cluster(h, 0)
        total = sum(
            len(h.descendants(h.led_cluster(m, 1)))
            for m in h.top_cluster.members
        )
        assert total == 63


class TestMultiLevelChainRepair:
    """Assumption-3 repair when the departing leader holds roles at three
    or more levels (4-level tree: bottom leader -> level-2 leader ->
    level-1 leader -> top member)."""

    def test_four_level_chain_repair(self):
        h = build_ecsm(n_levels=4, cluster_size=3, n_top=3)
        # device 0 leads its cluster at every intermediate level and sits
        # in the (leaderless) top cluster
        for level in (3, 2, 1):
            assert h.cluster_of(0, level).leader == 0
        assert 0 in h.top_cluster.members

        repaired = leave_cluster(h, 0)
        assert {lvl for lvl, _ in repaired} == {3, 2, 1}
        # repair proceeds bottom-up
        assert [lvl for lvl, _ in repaired] == sorted(
            (lvl for lvl, _ in repaired), reverse=True
        )
        h.validate()
        assert 0 not in h.nodes
        assert 0 not in h.top_cluster.members

        # the promoted chain: the bottom re-election winner was promoted
        # into every seat the departing device held, up to the top
        new_bottom_leader = h.clusters_at(3)[0].leader
        for level in (2, 1):
            assert new_bottom_leader in h.cluster_of(new_bottom_leader, level).members
        assert h.top_cluster.members.count(new_bottom_leader) <= 1

    def test_sequential_departures_stay_valid(self):
        """Repeatedly removing the current top-seat holder exercises the
        chain repair with already-promoted members; validate after each."""
        h = build_ecsm(n_levels=4, cluster_size=3, n_top=3)
        # each original top-seat holder roots a distinct subtree, so every
        # departure runs the full bottom-to-top chain repair
        for victim in list(h.top_cluster.members):
            leave_cluster(h, victim)
            h.validate()
            assert victim not in h.nodes
        # clusters were never split or merged
        assert len(h.clusters_at(3)) == 27

    def test_promoted_member_gains_upper_roles(self):
        h = build_ecsm(n_levels=4, cluster_size=3, n_top=3)
        leave_cluster(h, 0)
        promoted = h.clusters_at(3)[0].leader
        roles = h.nodes[promoted].roles
        assert {3, 2, 1, 0} <= roles or {3, 2, 1} <= roles


class TestChurnProcess:
    def test_runs_and_stays_valid(self, paper_hierarchy, rng):
        churn = ChurnProcess(paper_hierarchy, rng, join_probability=0.5)
        events = churn.run(40)
        assert len(events) > 0
        paper_hierarchy.validate()

    def test_join_only(self, paper_hierarchy, rng):
        churn = ChurnProcess(paper_hierarchy, rng, join_probability=1.0)
        churn.run(10)
        assert len(paper_hierarchy.bottom_clients()) == 74

    def test_byzantine_joins_flagged(self, paper_hierarchy, rng):
        churn = ChurnProcess(
            paper_hierarchy, rng, join_probability=1.0, byzantine_join_fraction=1.0
        )
        churn.run(5)
        assert len(paper_hierarchy.byzantine_devices()) == 5

    def test_validation(self, paper_hierarchy, rng):
        with pytest.raises(ValueError):
            ChurnProcess(paper_hierarchy, rng, join_probability=1.5)
        churn = ChurnProcess(paper_hierarchy, rng)
        with pytest.raises(ValueError):
            churn.run(-1)

    def test_deterministic_under_fixed_seed(self):
        """Same seed -> same event log, same final membership, same
        Byzantine assignment (byzantine_join_fraction exercised)."""

        def run_once():
            h = build_ecsm(n_levels=3, cluster_size=4, n_top=4)
            churn = ChurnProcess(
                h,
                np.random.default_rng(777),
                join_probability=0.6,
                byzantine_join_fraction=0.3,
            )
            events = churn.run(50)
            log = [(e.kind, e.device_id, e.cluster_index) for e in events]
            return log, sorted(h.nodes), sorted(h.byzantine_devices())

        log_a, nodes_a, byz_a = run_once()
        log_b, nodes_b, byz_b = run_once()
        assert log_a == log_b
        assert nodes_a == nodes_b
        assert byz_a == byz_b
        assert len(byz_a) > 0  # the byzantine fraction actually fired

    def test_different_seeds_diverge(self):
        def log_for(seed):
            h = build_ecsm(n_levels=3, cluster_size=4, n_top=4)
            churn = ChurnProcess(
                h, np.random.default_rng(seed), byzantine_join_fraction=0.3
            )
            return [(e.kind, e.device_id) for e in churn.run(30)]

        assert log_for(1) != log_for(2)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000), n_events=st.integers(1, 60))
def test_churn_preserves_invariants(seed, n_events):
    """Property: any event sequence leaves a structurally valid hierarchy
    with consistent node bookkeeping."""
    h = build_ecsm(n_levels=3, cluster_size=3, n_top=3)
    churn = ChurnProcess(
        h, np.random.default_rng(seed), join_probability=0.5,
        byzantine_join_fraction=0.2,
    )
    churn.run(n_events)
    h.validate()  # structural invariants
    # node table matches the union of cluster members
    members = {m for level in h.levels for c in level for m in c.members}
    assert members <= set(h.nodes)
    # every bottom cluster is non-empty and clusters were never split/merged
    assert len(h.clusters_at(h.bottom_level)) == 9
    for cluster in h.clusters_at(h.bottom_level):
        assert cluster.size >= 1
