"""Tests for membership dynamics (Assumption 3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.dynamics import ChurnProcess, join_cluster, leave_cluster
from repro.topology.tree import build_ecsm


class TestJoin:
    def test_join_adds_member(self, paper_hierarchy):
        h = paper_hierarchy
        before = len(h.bottom_clients())
        device = join_cluster(h, 0)
        assert len(h.bottom_clients()) == before + 1
        assert device in h.clusters_at(2)[0].members
        assert not h.is_byzantine(device)

    def test_join_byzantine(self, paper_hierarchy):
        device = join_cluster(paper_hierarchy, 3, byzantine=True)
        assert paper_hierarchy.is_byzantine(device)

    def test_join_does_not_displace_leader(self, paper_hierarchy):
        cluster = paper_hierarchy.clusters_at(2)[5]
        leader_before = cluster.leader
        join_cluster(paper_hierarchy, 5)
        assert cluster.leader == leader_before

    def test_join_duplicate_id_rejected(self, paper_hierarchy):
        with pytest.raises(ValueError):
            join_cluster(paper_hierarchy, 0, device_id=0)

    def test_join_bad_cluster_rejected(self, paper_hierarchy):
        with pytest.raises(IndexError):
            join_cluster(paper_hierarchy, 99)

    def test_ids_stay_unique(self, paper_hierarchy):
        ids = {join_cluster(paper_hierarchy, i % 16) for i in range(10)}
        assert len(ids) == 10
        assert ids.isdisjoint(set(range(64)))


class TestLeave:
    def test_leave_plain_member(self, paper_hierarchy):
        h = paper_hierarchy
        # device 1 is a plain member of bottom cluster 0 (leader is 0)
        repaired = leave_cluster(h, 1)
        assert repaired == []
        assert 1 not in h.clusters_at(2)[0].members
        assert 1 not in h.nodes

    def test_leave_bottom_leader_re_elects(self, paper_hierarchy):
        h = paper_hierarchy
        # device 4 leads bottom cluster 1 but is a plain member at level 1
        cluster = h.cluster_of(4, 2)
        assert cluster.leader == 4
        repaired = leave_cluster(h, 4)
        assert (2, cluster.index) in repaired
        assert cluster.leader == 5  # lowest remaining id
        # new leader took the seat at level 1
        assert 5 in h.cluster_of(5, 1).members
        assert 4 not in h.nodes

    def test_leave_full_leader_chain(self, paper_hierarchy):
        h = paper_hierarchy
        # device 0 leads its bottom cluster, leads its level-1 cluster,
        # and sits in the top cluster
        assert 0 in h.top_cluster.members
        repaired = leave_cluster(h, 0)
        levels_repaired = {lvl for lvl, _ in repaired}
        assert 2 in levels_repaired and 1 in levels_repaired
        assert 0 not in h.top_cluster.members
        # the structure remains valid after the chain repair
        h.validate()

    def test_leave_last_member_rejected(self):
        h = build_ecsm(n_levels=2, cluster_size=1, n_top=2)
        with pytest.raises(ValueError):
            leave_cluster(h, h.bottom_clients()[0])

    def test_leave_unknown_device(self, paper_hierarchy):
        with pytest.raises(KeyError):
            leave_cluster(paper_hierarchy, 999)

    def test_descendant_queries_still_work(self, paper_hierarchy):
        h = paper_hierarchy
        leave_cluster(h, 0)
        total = sum(
            len(h.descendants(h.led_cluster(m, 1)))
            for m in h.top_cluster.members
        )
        assert total == 63


class TestChurnProcess:
    def test_runs_and_stays_valid(self, paper_hierarchy, rng):
        churn = ChurnProcess(paper_hierarchy, rng, join_probability=0.5)
        events = churn.run(40)
        assert len(events) > 0
        paper_hierarchy.validate()

    def test_join_only(self, paper_hierarchy, rng):
        churn = ChurnProcess(paper_hierarchy, rng, join_probability=1.0)
        churn.run(10)
        assert len(paper_hierarchy.bottom_clients()) == 74

    def test_byzantine_joins_flagged(self, paper_hierarchy, rng):
        churn = ChurnProcess(
            paper_hierarchy, rng, join_probability=1.0, byzantine_join_fraction=1.0
        )
        churn.run(5)
        assert len(paper_hierarchy.byzantine_devices()) == 5

    def test_validation(self, paper_hierarchy, rng):
        with pytest.raises(ValueError):
            ChurnProcess(paper_hierarchy, rng, join_probability=1.5)
        churn = ChurnProcess(paper_hierarchy, rng)
        with pytest.raises(ValueError):
            churn.run(-1)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000), n_events=st.integers(1, 60))
def test_churn_preserves_invariants(seed, n_events):
    """Property: any event sequence leaves a structurally valid hierarchy
    with consistent node bookkeeping."""
    h = build_ecsm(n_levels=3, cluster_size=3, n_top=3)
    churn = ChurnProcess(
        h, np.random.default_rng(seed), join_probability=0.5,
        byzantine_join_fraction=0.2,
    )
    churn.run(n_events)
    h.validate()  # structural invariants
    # node table matches the union of cluster members
    members = {m for level in h.levels for c in level for m in c.members}
    assert members <= set(h.nodes)
    # every bottom cluster is non-empty and clusters were never split/merged
    assert len(h.clusters_at(h.bottom_level)) == 9
    for cluster in h.clusters_at(h.bottom_level):
        assert cluster.size >= 1
