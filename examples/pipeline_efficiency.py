#!/usr/bin/env python
"""Pipeline learning workflow: measure Eq. 3 and pick a flag level.

Part 1 runs the event-driven protocol (Fig. 2) over the paper topology
with a slow consensus-style global phase and reports per-round waiting
time sigma_w, total sigma and efficiency indicator nu, plus the
wall-clock speed-up over a fully serialised execution.

Part 2 sweeps every admissible flag level under the four Table VIII
delay regimes and prints the advisor's recommendation next to the
measured efficiency — the quantitative version of Appendix E.

Run:
    python examples/pipeline_efficiency.py
"""

from __future__ import annotations

import numpy as np

from repro.pipeline.event_run import EventDrivenRun, TimingConfig
from repro.pipeline.flag_level import advise_flag_level, sweep_flag_levels
from repro.pipeline.workflow import PipelineModel
from repro.sim.latency import FixedLatency, LogNormalLatency, StragglerLatency
from repro.topology.tree import build_ecsm
from repro.utils.tables import format_table


def part1_event_driven() -> None:
    hierarchy = build_ecsm(n_levels=3, cluster_size=4, n_top=4)
    config = TimingConfig(
        local_compute=StragglerLatency(
            LogNormalLatency(median=10.0, sigma=0.3), p=0.1, factor=3.0
        ),
        partial_aggregate=FixedLatency(1.0),
        global_aggregate=FixedLatency(25.0),
        link=FixedLatency(0.2),
        phi=0.75,
    )
    pipelined = EventDrivenRun(hierarchy, config, flag_level=1, seed=0)
    pipelined.run(15)
    serial = EventDrivenRun(hierarchy, config, flag_level=0, seed=0)
    serial.run(15)

    effs = pipelined.efficiencies()
    print("== Part 1: event-driven pipeline (Fig. 2) ==")
    print(f"mean efficiency indicator nu (Eq. 3): {float(np.mean(effs)):.3f}")
    print(
        f"wall-clock for 15 rounds: pipelined {pipelined.sim.now:.0f}s vs "
        f"serialised {serial.sim.now:.0f}s "
        f"(speed-up {serial.sim.now / pipelined.sim.now:.2f}x)"
    )


def part2_flag_level_sweep() -> None:
    print("\n== Part 2: flag-level selection (Appendix E / Table VIII) ==")
    cases = {
        "small tau'-small tau_g": (1.0, 1.0),
        "small tau'-big tau_g": (1.0, 20.0),
        "big tau'-small tau_g": (20.0, 1.0),
        "big tau'-big tau_g": (20.0, 20.0),
    }
    rng = np.random.default_rng(0)
    rows = []
    for case, (partial, global_) in cases.items():
        model = PipelineModel(
            collect_models={l: LogNormalLatency(2.0, 0.2) for l in (1, 2, 3)},
            aggregate_models={l: LogNormalLatency(partial, 0.2) for l in (1, 2, 3)},
            global_collect=LogNormalLatency(2.0, 0.2),
            global_aggregate=LogNormalLatency(global_, 0.2),
        )
        sweep = sweep_flag_levels(model, 200, rng)
        advice = advise_flag_level(partial, global_, 5.0, n_levels=4)
        best = max(sweep, key=lambda f: sweep[f]["efficiency"])
        rows.append(
            [
                case,
                advice.recommendation,
                " ".join(f"l{f}={sweep[f]['efficiency']:.2f}" for f in sorted(sweep)),
                best,
            ]
        )
    print(
        format_table(
            ["delay case", "advice", "measured nu", "best l_F"],
            rows,
        )
    )


if __name__ == "__main__":
    part1_event_driven()
    part2_flag_level_sweep()
