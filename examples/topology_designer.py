#!/usr/bin/env python
"""Design an ABD-HFL topology from a target Byzantine tolerance.

Uses the analytical machinery (Theorems 1-3, Corollaries 1-3) as a
design tool: given the per-level mechanisms' guarantees (gamma1 at the
top, gamma2 per intermediate cluster) and a target bottom-level
tolerance, compute how deep the hierarchy must be (Corollary 3), print
the per-level tolerance profile, and validate it against brute-force
counts on an explicitly generated worst-case tree.

Run:
    python examples/topology_designer.py
    python examples/topology_designer.py 0.25 0.25 0.70   # gamma1 gamma2 target
"""

from __future__ import annotations

import sys

from repro.topology.analysis import (
    brute_force_type1_counts,
    levels_needed_for_tolerance,
    max_byzantine_count,
    max_byzantine_fraction,
    nodes_at_level,
)
from repro.topology.tree import build_ecsm
from repro.utils.tables import format_percent, format_table


def main(gamma1: float, gamma2: float, target: float) -> None:
    print(
        f"mechanism guarantees: gamma1={format_percent(gamma1)} (top), "
        f"gamma2={format_percent(gamma2)} (per cluster); "
        f"target bottom tolerance {format_percent(target)}"
    )
    depth = levels_needed_for_tolerance(gamma1, gamma2, target)
    n_levels = depth + 1
    print(f"-> need bottom level l = {depth} ({n_levels} levels in total)\n")

    m, n_top = 4, 4
    rows = []
    for level in range(depth + 1):
        rows.append(
            [
                level,
                nodes_at_level(n_top, m, level),
                f"{max_byzantine_count(n_top, m, level, gamma1, gamma2):.0f}",
                format_percent(max_byzantine_fraction(gamma1, gamma2, level), 2),
            ]
        )
    print(
        format_table(
            ["level", "nodes (N_t=4, m=4)", "max Byzantine", "max fraction"],
            rows,
            title="Per-level tolerance profile (Theorem 2)",
        )
    )

    # Cross-check against an explicit worst-case two-type tree.
    p = 1.0 - gamma2
    if abs(p * m - round(p * m)) < 1e-9:
        honest_counts = brute_force_type1_counts(m, p, depth)
        print("\nbrute-force honest counts per level (single tree, worst case):")
        for level, honest in enumerate(honest_counts):
            floor = nodes_at_level(1, m, level) - max_byzantine_count(
                1, m, level, 0.0, gamma2
            )
            status = "OK" if abs(honest - floor) < 1e-9 else "MISMATCH"
            print(f"  level {level}: {honest} honest (Theorem 2 floor {floor:.0f}) {status}")

    hierarchy = build_ecsm(n_levels=n_levels, cluster_size=m, n_top=n_top)
    print(
        f"\nconstructed hierarchy: {len(hierarchy.bottom_clients())} bottom "
        f"devices across {len(hierarchy.clusters_at(hierarchy.bottom_level))} clusters"
    )


if __name__ == "__main__":
    args = [float(a) for a in sys.argv[1:4]] or [0.25, 0.25, 0.55]
    main(*args)
