#!/usr/bin/env python
"""Mini Table V: sweep the malicious proportion across the Theorem-2 bound.

Reproduces the headline IID / Type I row of the paper's Table V at
reduced scale: vanilla FL (Multi-Krum at the server) collapses to ~10 %
once the poisoned updates become the plurality cluster (>= 50 %), while
ABD-HFL's layered filtering plus top-level voting holds through the
57.8 % theoretical bound.

Run:
    python examples/poisoning_sweep.py          # IID, Type I
    python examples/poisoning_sweep.py noniid   # non-IID, Median rule
"""

from __future__ import annotations

import sys

from repro.experiments import ExperimentConfig
from repro.experiments.table5 import format_table5, run_table5
from repro.topology.analysis import max_byzantine_fraction
from repro.utils.tables import format_percent


def main(iid: bool = True) -> None:
    bound = max_byzantine_fraction(0.25, 0.25, 2)
    print(
        "Theorem 2 bound for gamma1=gamma2=25%, 3 levels: "
        f"{format_percent(bound, 4)}"
    )
    base = ExperimentConfig(n_rounds=20).for_distribution(iid)
    cells = run_table5(
        base,
        fractions=(0.0, 0.2, 0.4, 0.578, 0.65),
        distributions=(iid,),
        attacks=("type1",),
        n_runs=1,
    )
    print()
    print(format_table5(cells))
    print(
        "\nreduced scale (20 rounds, 12x12 synthetic digits); see "
        "ExperimentConfig.paper_scale() for the full Appendix D settings"
    )


if __name__ == "__main__":
    main(iid="noniid" not in sys.argv[1:])
