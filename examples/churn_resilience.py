#!/usr/bin/env python
"""Membership churn (Assumption 3): training survives joins and leaves.

Trains ABD-HFL for a few rounds, applies a burst of membership events —
devices joining bottom clusters (some of them Byzantine) and devices
leaving, including cluster leaders whose roles are repaired up the leader
chain — then resumes training.  The accuracy trajectory shows the system
absorbing the churn.

Run:
    python examples/churn_resilience.py
"""

from __future__ import annotations

import numpy as np

from repro.data.partition import iid_partition
from repro.data.poisoning import poison_type1
from repro.data.synthetic_mnist import SyntheticMNIST, make_synthetic_mnist
from repro.experiments import ExperimentConfig, build_abdhfl_trainer, prepare_data
from repro.topology.dynamics import join_cluster, leave_cluster
from repro.utils.tables import format_percent


def main() -> None:
    config = ExperimentConfig(n_rounds=10, malicious_fraction=0.2)
    data = prepare_data(config)
    trainer = build_abdhfl_trainer(config, data)

    print("phase 1: initial training (64 clients, 20% poisoned)")
    for record in trainer.run(8):
        if record.round_index % 2 == 0:
            print(f"  round {record.round_index}: "
                  f"{format_percent(record.test_accuracy)}")

    # --- churn burst -----------------------------------------------------
    hierarchy = data.hierarchy
    rng = np.random.default_rng(7)
    gen = SyntheticMNIST(side=config.image_side)
    fresh_train, _ = make_synthetic_mnist(6 * 200, 10, rng, gen)
    shards = iid_partition(fresh_train, 6, rng).shards

    new_datasets = {}
    for i in range(6):
        byz = i < 2  # two of the joiners are poisoners
        device = join_cluster(hierarchy, cluster_index=i, byzantine=byz)
        shard = poison_type1(shards[i]) if byz else shards[i]
        new_datasets[device] = shard
        print(f"join: device {device} -> cluster {i}{' (Byzantine)' if byz else ''}")

    for device in (1, 4, 0):  # 0 is a leader at every level: chain repair
        repaired = leave_cluster(hierarchy, device)
        print(f"leave: device {device}; leaders repaired at {repaired or 'none'}")

    joined, departed = trainer.sync_membership(new_datasets)
    print(f"trainer resynced: +{len(joined)} / -{len(departed)} devices; "
          f"{len(trainer.trainers)} active")

    print("phase 2: training continues after churn")
    for record in trainer.run(8):
        if record.round_index % 2 == 0:
            print(f"  round {record.round_index}: "
                  f"{format_percent(record.test_accuracy)}")

    print(f"\nfinal accuracy: {format_percent(trainer.history[-1].test_accuracy)}")


if __name__ == "__main__":
    main()
