#!/usr/bin/env python
"""Quickstart: train ABD-HFL next to vanilla FL under a poisoning attack.

Builds the paper's evaluation topology (3 levels, cluster size 4, 4
top-level nodes, 64 clients), poisons 40 % of the clients with the Type I
label attack (all labels -> 9), and trains both systems on the synthetic
MNIST task.  Expected outcome: similar clean accuracy, but under attack
the hierarchical, layer-by-layer filtering keeps ABD-HFL near its clean
accuracy while the star-topology baseline degrades.

Run:
    python examples/quickstart.py
"""

from __future__ import annotations

from repro.experiments import (
    ExperimentConfig,
    build_abdhfl_trainer,
    build_vanilla_trainer,
    prepare_data,
)
from repro.utils.tables import format_percent


def main() -> None:
    config = ExperimentConfig(
        n_rounds=20,
        malicious_fraction=0.40,
        attack="type1",
    )
    print(
        f"topology: {config.n_levels} levels, cluster size "
        f"{config.cluster_size}, {config.n_clients} clients; "
        f"{format_percent(config.malicious_fraction)} poisoned (Type I)"
    )

    data = prepare_data(config)
    print(f"byzantine clients: {data.byzantine}")

    abdhfl = build_abdhfl_trainer(config, data)
    vanilla = build_vanilla_trainer(config, data)

    print("\nround | ABD-HFL | Vanilla FL")
    for r in range(config.n_rounds):
        abd_rec = abdhfl.run_round()
        van_rec = vanilla.run_round()
        if r % 4 == 0 or r == config.n_rounds - 1:
            print(
                f"{r:5d} | {format_percent(abd_rec.test_accuracy):>7} "
                f"| {format_percent(van_rec.test_accuracy):>7}"
            )

    print(
        f"\nfinal: ABD-HFL {format_percent(abdhfl.history[-1].test_accuracy)}"
        f" vs vanilla {format_percent(vanilla.history[-1].test_accuracy)}"
    )
    excluded = sum(r.top_excluded for r in abdhfl.history)
    print(f"top-level voting excluded {excluded} poisoned proposals in total")


if __name__ == "__main__":
    main()
