#!/usr/bin/env python
"""Compare the four Byzantine-resistance schemes (Tables III/IV).

Trains ABD-HFL under each of the four partial/global BRA-CBA combinations
on the same 30 % Type-I-poisoned workload and prints measured robustness
next to the analytic per-round communication bill, recovering Table IV's
trade-off: scheme 3 (all BRA) is cheapest, scheme 4 (all CBA) costs the
most communication, schemes 1/2 sit between.

Run:
    python examples/scheme_comparison.py
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.schemes import SCHEME_DESCRIPTIONS
from repro.experiments import ExperimentConfig
from repro.experiments.schemes import run_scheme_comparison
from repro.utils.tables import format_percent, format_table


def main() -> None:
    config = replace(ExperimentConfig(n_rounds=15), malicious_fraction=0.30)
    outcomes = run_scheme_comparison(config)
    rows = []
    for o in outcomes:
        desc = SCHEME_DESCRIPTIONS[o.scheme]
        rows.append(
            [
                o.scheme,
                f"{o.partial_kind}/{o.global_kind}",
                format_percent(o.final_accuracy),
                o.analytic_model_messages,
                o.analytic_scalar_messages,
                desc["robustness"],
                desc["communication"],
            ]
        )
    print(
        format_table(
            [
                "scheme",
                "partial/global",
                "accuracy@30%",
                "model msgs",
                "scalar msgs",
                "paper robustness",
                "paper comm.",
            ],
            rows,
            title="Schemes 1-4 under 30% Type-I poisoning (Tables III/IV)",
        )
    )


if __name__ == "__main__":
    main()
