#!/usr/bin/env python
"""Topology/asynchrony comparison: ABD-HFL vs the other FL paradigms.

Runs four systems on identical data (8 clients for the flat systems, 64
for ABD-HFL's hierarchy is overkill here, so all use a small flat set):

* synchronous vanilla FL (star topology, FedAvg);
* FedAsync (asynchronous star; staleness-discounted merging);
* gossip (decentralized ring, D-PSGD averaging);
* ABD-HFL (2-level hierarchy over the same 8 clients).

First under no attack (all paradigms should learn), then with 25 % of
clients sign-flipping — where only the robust stacks survive.

Run:
    python examples/async_vs_sync.py
"""

from __future__ import annotations

import numpy as np

from repro.attacks import SignFlip
from repro.core import (
    ABDHFLConfig,
    ABDHFLTrainer,
    FedAsyncTrainer,
    GossipTrainer,
    LevelAggregation,
    TrainingConfig,
    VanillaFLTrainer,
    build_topology,
)
from repro.data.partition import iid_partition
from repro.data.synthetic_mnist import SyntheticMNIST, make_synthetic_mnist
from repro.nn.model import MLP
from repro.topology.tree import build_ecsm
from repro.utils.seeding import SeedSequenceFactory
from repro.utils.tables import format_percent, format_table

N_CLIENTS = 8
ROUNDS = 20
TRAIN_CFG = TrainingConfig(local_iterations=6, batch_size=32, learning_rate=0.5)


def setup(seed=0):
    seeds = SeedSequenceFactory(seed)
    gen = SyntheticMNIST(side=10, noise_sigma=0.2)
    train, test = make_synthetic_mnist(N_CLIENTS * 150, 400, seeds.generator("d"), gen)
    part = iid_partition(train, N_CLIENTS, seeds.generator("p"))
    datasets = dict(enumerate(part.shards))
    model = MLP(100, (24,), 10, seeds.generator("i"))
    return datasets, model, test


def run_all(attack: SignFlip | None) -> dict[str, float]:
    byz = [0, 1] if attack else []
    out: dict[str, float] = {}

    datasets, model, test = setup()
    vanilla = VanillaFLTrainer(
        datasets, model, TRAIN_CFG, test,
        aggregator="fedavg", byzantine=byz, model_attack=attack, seed=1,
    )
    vanilla.run(ROUNDS)
    out["vanilla FedAvg (sync)"] = vanilla.history[-1].test_accuracy

    datasets, model, test = setup()
    fedasync = FedAsyncTrainer(datasets, model, TRAIN_CFG, test, seed=1)
    # note: the FedAsync baseline has no Byzantine path — it is the
    # efficiency comparator; skip it under attack
    if attack is None:
        fedasync.run(ROUNDS * N_CLIENTS, eval_every=ROUNDS * N_CLIENTS)
        out["FedAsync (async)"] = fedasync.history[-1].test_accuracy

    datasets, model, test = setup()
    gossip = GossipTrainer(
        build_topology("regular", N_CLIENTS, np.random.default_rng(1), degree=4),
        datasets, model, TRAIN_CFG, test,
        mix_rule="trimmed" if attack else "average",
        byzantine=byz, model_attack=attack, seed=1,
    )
    gossip.run(ROUNDS)
    out["gossip (decentralized)"] = gossip.history[-1].mean_honest_accuracy

    datasets, model, test = setup()
    hierarchy = build_ecsm(n_levels=2, cluster_size=4, n_top=2)
    for cid in byz:
        hierarchy.nodes[cid].byzantine = True
    abd = ABDHFLTrainer(
        hierarchy, datasets, model,
        ABDHFLConfig(
            training=TRAIN_CFG,
            default_intermediate=LevelAggregation("bra", "multikrum"),
            default_top=LevelAggregation("cba", "voting"),
        ),
        test, seed=1, model_attack=attack, protocol_byzantine=attack is not None,
    )
    abd.run(ROUNDS)
    out["ABD-HFL (hierarchical)"] = abd.history[-1].test_accuracy
    return out


def main() -> None:
    clean = run_all(attack=None)
    attacked = run_all(attack=SignFlip(scale=5.0))
    systems = sorted(set(clean) | set(attacked))
    rows = [
        [
            s,
            format_percent(clean[s]) if s in clean else "-",
            format_percent(attacked[s]) if s in attacked else "n/a",
        ]
        for s in systems
    ]
    print(
        format_table(
            ["system", "clean accuracy", "25% sign-flip"],
            rows,
            title=f"FL paradigms on identical data ({ROUNDS} rounds)",
        )
    )


if __name__ == "__main__":
    main()
